module Q = Numeric.Rat

type op = Le | Lt

type t =
  | True
  | False
  | Bvar of int
  | Atom of op * Linexp.t
  | Not of t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let bvar v = Bvar v

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

exception Decided

(* drop the unit, flatten nested occurrences of the same connective, and
   short-circuit on the absorbing element *)
let gather ~unit ~absorbing ~flatten fs =
  let rec go acc fs =
    List.fold_left
      (fun acc f ->
        if f = unit then acc
        else if f = absorbing then raise Decided
        else match flatten f with Some gs -> go acc gs | None -> f :: acc)
      acc fs
  in
  List.rev (go [] fs)

let and_ fs =
  match
    gather ~unit:True ~absorbing:False
      ~flatten:(function And gs -> Some gs | _ -> None)
      fs
  with
  | exception Decided -> False
  | [] -> True
  | [ f ] -> f
  | fs -> And fs

let or_ fs =
  match
    gather ~unit:False ~absorbing:True
      ~flatten:(function Or gs -> Some gs | _ -> None)
      fs
  with
  | exception Decided -> True
  | [] -> False
  | [ f ] -> f
  | fs -> Or fs

let implies a b = or_ [ not_ a; b ]
let iff a b = and_ [ implies a b; implies b a ]
let ite c a b = and_ [ implies c a; implies (not_ c) b ]

let mk_atom op e =
  if Linexp.is_const e then
    let c = Q.compare (Linexp.const_part e) Q.zero in
    match op with
    | Le -> if c <= 0 then True else False
    | Lt -> if c < 0 then True else False
  else Atom (op, e)

let le a b = mk_atom Le (Linexp.sub a b)
let lt a b = mk_atom Lt (Linexp.sub a b)
let ge a b = le b a
let gt a b = lt b a
let eq a b = and_ [ le a b; ge a b ]
let neq a b = or_ [ lt a b; gt a b ]

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Bvar v -> Format.fprintf fmt "b%d" v
  | Atom (Le, e) -> Format.fprintf fmt "(%a <= 0)" Linexp.pp e
  | Atom (Lt, e) -> Format.fprintf fmt "(%a < 0)" Linexp.pp e
  | Not f -> Format.fprintf fmt "(not %a)" pp f
  | And fs ->
    Format.fprintf fmt "(and";
    List.iter (fun f -> Format.fprintf fmt " %a" pp f) fs;
    Format.fprintf fmt ")"
  | Or fs ->
    Format.fprintf fmt "(or";
    List.iter (fun f -> Format.fprintf fmt " %a" pp f) fs;
    Format.fprintf fmt ")"
