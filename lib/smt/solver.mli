(** SMT solver facade: Boolean + linear rational arithmetic (QF_LRA).

    This is the replacement for the Z3 solver the paper drives through its
    .NET API: formulas are asserted, [check] returns sat/unsat, and models
    assign Booleans and exact rationals.  Clauses may be added after a
    [`Sat] answer (e.g. blocking clauses in the impact-analysis loop) and
    [check] called again, retaining learned clauses. *)

type t

val create : unit -> t

val fresh_bool : ?name:string -> t -> int
val fresh_real : ?name:string -> t -> int

val n_bools : t -> int
(** Number of Boolean (SAT) variables allocated so far, Tseitin and
    internal variables included: every valid [Form.Bvar] id is below it. *)

val n_reals : t -> int
(** Number of theory (real) variables allocated so far: every valid
    [Linexp] variable id is below it. *)

val bool_name : t -> int -> string option
(** Name passed to {!fresh_bool} for this variable, if any. *)

val real_name : t -> int -> string option
(** Name passed to {!fresh_real} for this variable, if any. *)

val real_expr_var : t -> Linexp.t -> int
(** A variable constrained to equal the given expression (constant part
    allowed); useful for naming sums such as total generation cost. *)

val assert_form : t -> Form.t -> unit

val assert_at_most : t -> int -> Form.t list -> unit
(** Cardinality [sum(f_i) <= k] via the Sinz sequential-counter encoding. *)

val assert_at_most_indicator : t -> int -> Form.t list -> unit
(** Same constraint encoded with 0/1 indicator reals summed in LRA —
    kept as an ablation of the encoding choice (see DESIGN.md). *)

val bound_real :
  t -> ?lo:Numeric.Rat.t -> ?hi:Numeric.Rat.t -> int -> unit
(** Permanent structural bounds on a real variable. *)

val check : t -> [ `Sat | `Unsat ]

val model_bool : t -> int -> bool
(** @raise Failure if the last [check] was not [`Sat]. *)

val model_real : t -> int -> Numeric.Rat.t

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;  (** learned clauses *)
  pivots : int;  (** simplex pivots *)
  bound_asserts : int;
  slack_rows : int;
  atom_cache_hits : int;
  atom_cache_misses : int;
  tseitin_clauses : int;
}

val stats : t -> stats
(** Cumulative per-instance counters of the SAT core, the simplex theory
    solver, and this facade (atom cache, Tseitin translation). *)

val json_of_stats : stats -> Obs.Json.t
val pp_stats : Format.formatter -> stats -> unit

val named_model :
  t -> (string * [ `Bool of bool | `Real of Numeric.Rat.t ]) list
(** The last model restricted to variables that were given a [?name],
    sorted by name; empty when the last [check] was not [`Sat]. *)

val pp_model : Format.formatter -> t -> unit
(** Print {!named_model} one binding per line. *)
