module Q = Numeric.Rat
module QD = Numeric.Qdelta
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

let prof_pivots_internal = ref 0
let prof_pops_internal = ref 0

let obs_pivots = Obs.Counter.make "smt.simplex.pivots"
let obs_pops = Obs.Counter.make "smt.simplex.worklist_pops"
let obs_bound_asserts = Obs.Counter.make "smt.simplex.bound_asserts"
let obs_slack_rows = Obs.Counter.make "smt.simplex.slack_rows"

type side = Upper | Lower

type bound = { value : QD.t; lit : Sat.lit (* -1 when structural *) }

type atom = { tvar : int; side : side; abound : QD.t }

type undo = Set_lower of int * bound option | Set_upper of int * bound option

type t = {
  mutable lower : bound option array;
  mutable upper : bound option array;
  mutable beta : QD.t array;
  mutable nvars : int;
  mutable rows : Q.t Imap.t Imap.t;
      (* basic var -> row over nonbasic vars; invariant: each row's
         variables are all nonbasic *)
  cols : (int, int list ref) Hashtbl.t;
      (* column index: var -> basic vars whose row may contain it; kept as
         an overapproximation (stale entries filtered lazily) so pivots
         stay cheap *)
  slacks : (string, int) Hashtbl.t; (* canonical linexp key -> slack var *)
  atoms : (int, atom) Hashtbl.t; (* sat var -> atom *)
  mutable trail : undo list;
  mutable level_marks : int list; (* trail lengths at decision levels *)
  mutable trail_len : int;
  mutable last_epsilon : Q.t;
  mutable violated : Iset.t;
      (* superset of the basic variables whose assignment may violate a
         bound; lets [check] work from a worklist instead of scanning the
         whole tableau *)
  mutable n_pivots : int;
  mutable n_bound_asserts : int;
  mutable n_slack_rows : int;
}

let create () =
  {
    lower = Array.make 16 None;
    upper = Array.make 16 None;
    beta = Array.make 16 QD.zero;
    nvars = 0;
    rows = Imap.empty;
    cols = Hashtbl.create 256;
    slacks = Hashtbl.create 64;
    atoms = Hashtbl.create 64;
    trail = [];
    level_marks = [];
    trail_len = 0;
    last_epsilon = Q.one;
    violated = Iset.empty;
    n_pivots = 0;
    n_bound_asserts = 0;
    n_slack_rows = 0;
  }

let n_pivots t = t.n_pivots
let n_bound_asserts t = t.n_bound_asserts
let n_slack_rows t = t.n_slack_rows

let col_add t v basic =
  match Hashtbl.find_opt t.cols v with
  | Some l -> l := basic :: !l
  | None -> Hashtbl.add t.cols v (ref [ basic ])

(* basic vars whose row really contains [v]; compacts the index in place *)
let occurrences t v =
  match Hashtbl.find_opt t.cols v with
  | None -> []
  | Some l ->
    let live =
      List.sort_uniq compare !l
      |> List.filter (fun b ->
             match Imap.find_opt b t.rows with
             | Some row -> Imap.mem v row
             | None -> false)
    in
    l := live;
    live

let grow t =
  let cap = Array.length t.beta in
  if t.nvars > cap then begin
    let ncap = max (2 * cap) t.nvars in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.lower <- extend t.lower None;
    t.upper <- extend t.upper None;
    t.beta <- extend t.beta QD.zero
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- t.nvars + 1;
  grow t;
  v

let is_basic t v = Imap.mem v t.rows

let below_lower t x =
  match t.lower.(x) with Some b -> QD.( < ) t.beta.(x) b.value | None -> false

let above_upper t x =
  match t.upper.(x) with Some b -> QD.( < ) b.value t.beta.(x) | None -> false

(* record that basic variable [x] may now violate a bound *)
let note_violation t x =
  if below_lower t x || above_upper t x then
    t.violated <- Iset.add x t.violated

(* value of a row under the current assignment *)
let row_value t row =
  Imap.fold (fun v c acc -> QD.add acc (QD.scale c t.beta.(v))) row QD.zero

(* substitute basic variables out of a term map *)
let normalize_terms t terms =
  Imap.fold
    (fun v c acc ->
      match Imap.find_opt v t.rows with
      | None ->
        Imap.update v
          (function
            | None -> Some c
            | Some c0 ->
              let s = Q.add c0 c in
              if Q.is_zero s then None else Some s)
          acc
      | Some row ->
        Imap.fold
          (fun w cw acc ->
            Imap.update w
              (function
                | None -> Some (Q.mul c cw)
                | Some c0 ->
                  let s = Q.add c0 (Q.mul c cw) in
                  if Q.is_zero s then None else Some s)
              acc)
          row acc)
    terms Imap.empty

let define_slack t e =
  assert (Q.is_zero (Linexp.const_part e));
  let k = Linexp.key e in
  match Hashtbl.find_opt t.slacks k with
  | Some v -> v
  | None ->
    let s = new_var t in
    t.n_slack_rows <- t.n_slack_rows + 1;
    Obs.Counter.incr obs_slack_rows;
    let terms =
      List.fold_left
        (fun m (v, c) -> Imap.add v c m)
        Imap.empty (Linexp.terms e)
    in
    let row = normalize_terms t terms in
    t.rows <- Imap.add s row t.rows;
    Imap.iter (fun v _ -> col_add t v s) row;
    t.beta.(s) <- row_value t row;
    Hashtbl.add t.slacks k s;
    s

let register_atom t ~sat_var ~tvar ~side ~bound =
  Hashtbl.replace t.atoms sat_var { tvar; side; abound = bound }

let push_undo t u =
  t.trail <- u :: t.trail;
  t.trail_len <- t.trail_len + 1

(* adjust the assignment of nonbasic variable x to v, updating basics *)
let update_nonbasic t x v =
  let delta = QD.sub v t.beta.(x) in
  if not (QD.equal delta QD.zero) then begin
    List.iter
      (fun b ->
        match Imap.find_opt x (Imap.find b t.rows) with
        | None -> ()
        | Some c ->
          t.beta.(b) <- QD.add t.beta.(b) (QD.scale c delta);
          note_violation t b)
      (occurrences t x);
    t.beta.(x) <- v
  end

let neg_lit_of_bound b = if b.lit >= 0 then Some (Sat.lit_neg b.lit) else None

(* returns a conflict clause if the new bound clashes with the opposite one *)
let assert_bound t x side (value : QD.t) lit =
  t.n_bound_asserts <- t.n_bound_asserts + 1;
  Obs.Counter.incr obs_bound_asserts;
  match side with
  | Upper -> (
    let current = t.upper.(x) in
    let redundant =
      match current with Some b -> QD.( <= ) b.value value | None -> false
    in
    if redundant then None
    else
      match t.lower.(x) with
      | Some lb when QD.( < ) value lb.value ->
        let cl =
          List.filter_map Fun.id
            [
              (if lit >= 0 then Some (Sat.lit_neg lit) else None);
              neg_lit_of_bound lb;
            ]
        in
        Some (Array.of_list cl)
      | _ ->
        push_undo t (Set_upper (x, current));
        t.upper.(x) <- Some { value; lit };
        if not (is_basic t x) then begin
          if QD.( < ) value t.beta.(x) then update_nonbasic t x value
        end
        else note_violation t x;
        None)
  | Lower -> (
    let current = t.lower.(x) in
    let redundant =
      match current with Some b -> QD.( <= ) value b.value | None -> false
    in
    if redundant then None
    else
      match t.upper.(x) with
      | Some ub when QD.( < ) ub.value value ->
        let cl =
          List.filter_map Fun.id
            [
              (if lit >= 0 then Some (Sat.lit_neg lit) else None);
              neg_lit_of_bound ub;
            ]
        in
        Some (Array.of_list cl)
      | _ ->
        push_undo t (Set_lower (x, current));
        t.lower.(x) <- Some { value; lit };
        if not (is_basic t x) then begin
          if QD.( < ) t.beta.(x) value then update_nonbasic t x value
        end
        else note_violation t x;
        None)

let assert_permanent t ~tvar ~side ~bound =
  match assert_bound t tvar side bound (-1) with
  | None -> true
  | Some _ -> false

(* effective (side, bound) asserted by a literal over its atom *)
let effective_bound atom pos =
  if pos then (atom.side, atom.abound)
  else
    match atom.side with
    | Upper ->
      (* not (x <= b) is x >= b + eps *)
      (Lower, QD.make atom.abound.QD.real (Q.add atom.abound.QD.delta Q.one))
    | Lower -> (Upper, QD.make atom.abound.QD.real (Q.sub atom.abound.QD.delta Q.one))

let t_assert t lit =
  match Hashtbl.find_opt t.atoms (Sat.var_of_lit lit) with
  | None -> None
  | Some atom ->
    let side, bound = effective_bound atom (Sat.lit_is_pos lit) in
    assert_bound t atom.tvar side bound lit

(* pivot basic xi with nonbasic xj (xj in row of xi) *)
let pivot t xi xj =
  incr prof_pivots_internal;
  t.n_pivots <- t.n_pivots + 1;
  Obs.Counter.incr obs_pivots;
  let row_i = Imap.find xi t.rows in
  let a = Imap.find xj row_i in
  let inv_a = Q.inv a in
  (* xj = (1/a) xi - sum_{v != xj} (c_v / a) v *)
  let row_j =
    Imap.fold
      (fun v c acc ->
        if v = xj then acc else Imap.add v (Q.neg (Q.mul c inv_a)) acc)
      row_i
      (Imap.singleton xi inv_a)
  in
  let touched = occurrences t xj in
  let rows = Imap.remove xi t.rows in
  (* substitute xj in the rows that contain it *)
  let rows =
    List.fold_left
      (fun rows k ->
        if k = xi then rows
        else
          match Imap.find_opt k rows with
          | None -> rows
          | Some row -> (
            match Imap.find_opt xj row with
            | None -> rows
            | Some c ->
              let row = Imap.remove xj row in
              let row' =
                Imap.fold
                  (fun v cv acc ->
                    Imap.update v
                      (function
                        | None -> Some (Q.mul c cv)
                        | Some c0 ->
                          let s = Q.add c0 (Q.mul c cv) in
                          if Q.is_zero s then None else Some s)
                      acc)
                  row_j row
              in
              Imap.iter (fun v _ -> col_add t v k) row_j;
              Imap.add k row' rows))
      rows touched
  in
  t.rows <- Imap.add xj row_j rows;
  Imap.iter (fun v _ -> col_add t v xj) row_j

let pivot_and_update t xi xj v =
  let row_i = Imap.find xi t.rows in
  let a = Imap.find xj row_i in
  let theta = QD.scale (Q.inv a) (QD.sub v t.beta.(xi)) in
  t.beta.(xi) <- v;
  t.beta.(xj) <- QD.add t.beta.(xj) theta;
  List.iter
    (fun b ->
      if b <> xi then
        match Imap.find_opt xj (Imap.find b t.rows) with
        | None -> ()
        | Some c ->
          t.beta.(b) <- QD.add t.beta.(b) (QD.scale c theta);
          note_violation t b)
    (occurrences t xj);
  pivot t xi xj;
  note_violation t xj

let can_increase t x =
  match t.upper.(x) with Some b -> QD.( < ) t.beta.(x) b.value | None -> true

let can_decrease t x =
  match t.lower.(x) with Some b -> QD.( < ) b.value t.beta.(x) | None -> true

exception Conflict of Sat.lit array

let conflict_from_row t xi ~too_low =
  let row = Imap.find xi t.rows in
  let lits = ref [] in
  let add_opt = function Some l -> lits := l :: !lits | None -> () in
  (if too_low then
     add_opt (neg_lit_of_bound (Option.get t.lower.(xi)))
   else add_opt (neg_lit_of_bound (Option.get t.upper.(xi))));
  Imap.iter
    (fun xj c ->
      let positive = Q.sign c > 0 in
      (* when xi is below its lower bound, increasing xi needs increasing
         positive-coefficient vars (blocked by their upper bounds) and
         decreasing negative-coefficient ones (blocked by lower bounds) *)
      let blocking =
        if too_low = positive then t.upper.(xj) else t.lower.(xj)
      in
      match blocking with
      | Some b -> add_opt (neg_lit_of_bound b)
      | None -> assert false)
    row;
  Array.of_list !lits

(* Bland's-rule repair loop over the violated-basics worklist; the
   worklist is a superset of the truly violated basics, so popping its
   minimum and re-verifying implements Bland's smallest-index rule *)
let check_full t =
  try
    let continue = ref true in
    while !continue do
      match Iset.min_elt_opt t.violated with
      | None -> continue := false
      | Some xi ->
        incr prof_pops_internal;
        Obs.Counter.incr obs_pops;
        t.violated <- Iset.remove xi t.violated;
        if is_basic t xi then begin
          let row = Imap.find xi t.rows in
          if below_lower t xi then begin
            (* need to increase xi *)
            let xj =
              Imap.fold
                (fun v c acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    let ok =
                      if Q.sign c > 0 then can_increase t v else can_decrease t v
                    in
                    if ok then Some v else None)
                row None
            in
            match xj with
            | None ->
              t.violated <- Iset.add xi t.violated;
              raise (Conflict (conflict_from_row t xi ~too_low:true))
            | Some xj ->
              pivot_and_update t xi xj (Option.get t.lower.(xi)).value
          end
          else if above_upper t xi then begin
            (* need to decrease xi *)
            let xj =
              Imap.fold
                (fun v c acc ->
                  match acc with
                  | Some _ -> acc
                  | None ->
                    let ok =
                      if Q.sign c > 0 then can_decrease t v else can_increase t v
                    in
                    if ok then Some v else None)
                row None
            in
            match xj with
            | None ->
              t.violated <- Iset.add xi t.violated;
              raise (Conflict (conflict_from_row t xi ~too_low:false))
            | Some xj ->
              pivot_and_update t xi xj (Option.get t.upper.(xi)).value
          end
        end
    done;
    None
  with Conflict c -> Some c

let check t = if Iset.is_empty t.violated then None else check_full t
let check_now = check_full

let t_new_level t = t.level_marks <- t.trail_len :: t.level_marks

let t_backtrack t target_level =
  let depth = List.length t.level_marks in
  let rec drop_marks marks depth n =
    if depth <= target_level then (marks, n)
    else
      match marks with
      | m :: rest -> drop_marks rest (depth - 1) m
      | [] -> (marks, n)
  in
  let marks, keep = drop_marks t.level_marks depth t.trail_len in
  t.level_marks <- marks;
  while t.trail_len > keep do
    (match t.trail with
    | [] -> assert false
    | u :: rest ->
      (match u with
      | Set_lower (x, old) -> t.lower.(x) <- old
      | Set_upper (x, old) -> t.upper.(x) <- old);
      t.trail <- rest);
    t.trail_len <- t.trail_len - 1
  done

let prof_pivots = prof_pivots_internal
let prof_pops = prof_pops_internal

let theory_hooks t =
  {
    Sat.t_assert = (fun lit -> t_assert t lit);
    t_new_level = (fun () -> t_new_level t);
    t_backtrack = (fun lvl -> t_backtrack t lvl);
    t_check =
      (fun ~final ->
        ignore final;
        check t);
  }

(* choose a concrete epsilon small enough that all bounds remain satisfied
   when beta's delta components are scaled by it (Dutertre-de Moura 3.3) *)
let compute_epsilon t =
  let eps = ref Q.one in
  let consider (c : QD.t) (b : QD.t) =
    (* requirement: c.real + eps * c.delta >= b.real + eps * b.delta given
       c >= b lexicographically; binding when c.real > b.real but
       c.delta < b.delta *)
    if Q.( > ) c.QD.real b.QD.real && Q.( < ) c.QD.delta b.QD.delta then begin
      let candidate =
        Q.div (Q.sub c.QD.real b.QD.real) (Q.sub b.QD.delta c.QD.delta)
      in
      if Q.( < ) candidate !eps then eps := candidate
    end
  in
  for x = 0 to t.nvars - 1 do
    (match t.lower.(x) with Some b -> consider t.beta.(x) b.value | None -> ());
    match t.upper.(x) with Some b -> consider b.value t.beta.(x) | None -> ()
  done;
  (* stay strictly inside the binding region *)
  Q.div !eps (Q.of_int 2)

let model_value t v =
  t.last_epsilon <- compute_epsilon t;
  QD.concretize ~epsilon:t.last_epsilon t.beta.(v)

let model_all t =
  let epsilon = compute_epsilon t in
  t.last_epsilon <- epsilon;
  Array.init t.nvars (fun v -> QD.concretize ~epsilon t.beta.(v))
