module Q = Numeric.Rat
module QD = Numeric.Qdelta

let obs_atom_hits = Obs.Counter.make "smt.solver.atom_cache_hits"
let obs_atom_misses = Obs.Counter.make "smt.solver.atom_cache_misses"
let obs_tseitin = Obs.Counter.make "smt.solver.tseitin_clauses"
let obs_checks = Obs.Counter.make "smt.solver.checks"
let obs_check_timer = Obs.Timer.make "smt.solver.check"
let obs_decisions_hist = Obs.Histogram.make "smt.sat.decisions_per_check"
let obs_pivots_hist = Obs.Histogram.make "smt.simplex.pivots_per_check"

type t = {
  sat : Sat.t;
  simplex : Simplex.t;
  atom_cache : (string, int) Hashtbl.t; (* canonical atom -> sat var *)
  bool_names : (int, string) Hashtbl.t; (* sat var -> user name *)
  real_names : (int, string) Hashtbl.t; (* theory var -> user name *)
  mutable true_var : int; (* sat var forced true *)
  mutable bool_model : bool array;
  mutable real_model : Q.t array;
  mutable nreals : int;
  mutable has_model : bool;
  mutable unsat : bool;
  mutable atom_hits : int;
  mutable atom_misses : int;
  mutable tseitin_clauses : int;
}

let create () =
  let simplex = Simplex.create () in
  let sat = Sat.create ~theory:(Simplex.theory_hooks simplex) () in
  let true_var = Sat.new_var sat in
  Sat.add_clause sat [ Sat.lit_of_var true_var true ];
  {
    sat;
    simplex;
    atom_cache = Hashtbl.create 256;
    bool_names = Hashtbl.create 64;
    real_names = Hashtbl.create 64;
    true_var;
    bool_model = [||];
    real_model = [||];
    nreals = 0;
    has_model = false;
    unsat = false;
    atom_hits = 0;
    atom_misses = 0;
    tseitin_clauses = 0;
  }

let fresh_bool ?name s =
  let v = Sat.new_var s.sat in
  (match name with Some n -> Hashtbl.replace s.bool_names v n | None -> ());
  v

let fresh_real ?name s =
  let v = Simplex.new_var s.simplex in
  (match name with Some n -> Hashtbl.replace s.real_names v n | None -> ());
  s.nreals <- max s.nreals (v + 1);
  v

let n_bools s = Sat.nvars s.sat
let n_reals s = s.nreals
let bool_name s v = Hashtbl.find_opt s.bool_names v
let real_name s v = Hashtbl.find_opt s.real_names v

(* A variable equal to a linear expression: reuse/define the slack for the
   homogeneous part; a pure variable is returned as-is when no constant. *)
let real_expr_var s e =
  let c = Linexp.const_part e in
  if Q.is_zero c then begin
    match Linexp.terms e with
    | [ (v, k) ] when Q.equal k Q.one -> v
    | [] -> invalid_arg "Solver.real_expr_var: constant expression"
    | _ ->
      let v = Simplex.define_slack s.simplex e in
      s.nreals <- max s.nreals (v + 1);
      v
  end
  else begin
    (* define slack for e - c, then shift is not representable as a var:
       introduce w with w = slack + c via another slack over (w' := e) is
       impossible without constants in rows, so instead create a fresh var
       w and asserting w - e = 0 would need the atom machinery.  We instead
       create the slack for the homogeneous part and remember the shift by
       returning a var with permanent equality: w = e  <=>  slack(e - w)=0.
       Simplest sound encoding: fresh var w, assert (w - e <= 0) and
       (e - w <= 0) as permanent bounds on the slack of (w - e). *)
    let w = Simplex.new_var s.simplex in
    s.nreals <- max s.nreals (w + 1);
    let diff = Linexp.sub (Linexp.var w) e in
    (* diff = w - e; homogeneous part is w - terms(e); bound slack to c *)
    let homogeneous = Linexp.sub diff (Linexp.const (Linexp.const_part diff)) in
    let slack = Simplex.define_slack s.simplex homogeneous in
    s.nreals <- max s.nreals (slack + 1);
    let target = QD.of_rat (Q.neg (Linexp.const_part diff)) in
    let ok1 =
      Simplex.assert_permanent s.simplex ~tvar:slack ~side:Simplex.Upper
        ~bound:target
    in
    let ok2 =
      Simplex.assert_permanent s.simplex ~tvar:slack ~side:Simplex.Lower
        ~bound:target
    in
    if not (ok1 && ok2) then s.unsat <- true;
    w
  end

(* canonical form of an atom [e op 0] as a bound on a variable *)
let atom_sat_var s op e =
  let terms = Linexp.terms e in
  let const = Linexp.const_part e in
  let tvar, side, bound =
    match terms with
    | [] -> invalid_arg "atom_sat_var: constant atom"
    | [ (v, c) ] ->
      let b = Q.neg (Q.div const c) in
      if Q.sign c > 0 then
        (* v <= b  (or <) *)
        ( v,
          Simplex.Upper,
          QD.make b (if op = Form.Lt then Q.minus_one else Q.zero) )
      else
        ( v,
          Simplex.Lower,
          QD.make b (if op = Form.Lt then Q.one else Q.zero) )
    | (_, c0) :: _ ->
      let scaled = Linexp.scale (Q.inv c0) (Linexp.sub e (Linexp.const const)) in
      let slack = Simplex.define_slack s.simplex scaled in
      s.nreals <- max s.nreals (slack + 1);
      let b = Q.neg (Q.div const c0) in
      if Q.sign c0 > 0 then
        ( slack,
          Simplex.Upper,
          QD.make b (if op = Form.Lt then Q.minus_one else Q.zero) )
      else
        ( slack,
          Simplex.Lower,
          QD.make b (if op = Form.Lt then Q.one else Q.zero) )
  in
  let side_tag = match side with Simplex.Upper -> "U" | Simplex.Lower -> "L" in
  let key =
    Printf.sprintf "%d|%s|%s|%s" tvar side_tag
      (Q.to_string bound.QD.real)
      (Q.to_string bound.QD.delta)
  in
  match Hashtbl.find_opt s.atom_cache key with
  | Some v ->
    s.atom_hits <- s.atom_hits + 1;
    Obs.Counter.incr obs_atom_hits;
    v
  | None ->
    s.atom_misses <- s.atom_misses + 1;
    Obs.Counter.incr obs_atom_misses;
    let v = Sat.new_var s.sat in
    Simplex.register_atom s.simplex ~sat_var:v ~tvar ~side ~bound;
    Hashtbl.add s.atom_cache key v;
    v

let true_lit s = Sat.lit_of_var s.true_var true

(* Tseitin translation to a literal *)
let rec lit_of s (f : Form.t) : Sat.lit =
  match f with
  | True -> true_lit s
  | False -> Sat.lit_neg (true_lit s)
  | Bvar v -> Sat.lit_of_var v true
  | Atom (op, e) -> Sat.lit_of_var (atom_sat_var s op e) true
  | Not f -> Sat.lit_neg (lit_of s f)
  | And fs ->
    let ls = List.map (lit_of s) fs in
    let x = Sat.new_var s.sat in
    let lx = Sat.lit_of_var x true in
    List.iter (fun l -> Sat.add_clause s.sat [ Sat.lit_neg lx; l ]) ls;
    Sat.add_clause s.sat (lx :: List.map Sat.lit_neg ls);
    let added = List.length ls + 1 in
    s.tseitin_clauses <- s.tseitin_clauses + added;
    Obs.Counter.add obs_tseitin added;
    lx
  | Or fs ->
    let ls = List.map (lit_of s) fs in
    let x = Sat.new_var s.sat in
    let lx = Sat.lit_of_var x true in
    List.iter (fun l -> Sat.add_clause s.sat [ lx; Sat.lit_neg l ]) ls;
    Sat.add_clause s.sat (Sat.lit_neg lx :: ls);
    let added = List.length ls + 1 in
    s.tseitin_clauses <- s.tseitin_clauses + added;
    Obs.Counter.add obs_tseitin added;
    lx

let rec assert_form s (f : Form.t) =
  s.has_model <- false;
  match f with
  | Form.True -> ()
  | Form.False -> s.unsat <- true
  | Form.And fs -> List.iter (assert_form s) fs
  | Form.Or fs -> Sat.add_clause s.sat (List.map (lit_of s) fs)
  | f -> Sat.add_clause s.sat [ lit_of s f ]

(* Sinz sequential-counter encoding of sum(x_i) <= k *)
let assert_at_most s k fs =
  s.has_model <- false;
  let xs = Array.of_list (List.map (lit_of s) fs) in
  let n = Array.length xs in
  if k >= n then ()
  else if k = 0 then
    Array.iter (fun l -> Sat.add_clause s.sat [ Sat.lit_neg l ]) xs
  else begin
    (* r.(i).(j): among x_0..x_i there are at least j+1 true *)
    let r =
      Array.init (n - 1) (fun _ ->
          Array.init k (fun _ -> Sat.lit_of_var (Sat.new_var s.sat) true))
    in
    let neg = Sat.lit_neg in
    Sat.add_clause s.sat [ neg xs.(0); r.(0).(0) ];
    for j = 1 to k - 1 do
      Sat.add_clause s.sat [ neg r.(0).(j) ]
    done;
    for i = 1 to n - 2 do
      Sat.add_clause s.sat [ neg xs.(i); r.(i).(0) ];
      Sat.add_clause s.sat [ neg r.(i - 1).(0); r.(i).(0) ];
      for j = 1 to k - 1 do
        Sat.add_clause s.sat [ neg xs.(i); neg r.(i - 1).(j - 1); r.(i).(j) ];
        Sat.add_clause s.sat [ neg r.(i - 1).(j); r.(i).(j) ]
      done;
      Sat.add_clause s.sat [ neg xs.(i); neg r.(i - 1).(k - 1) ]
    done;
    Sat.add_clause s.sat [ neg xs.(n - 1); neg r.(n - 2).(k - 1) ]
  end

(* the LRA-indicator alternative: sum of 0/1 reals bounded by k *)
let assert_at_most_indicator s k fs =
  let indicators =
    List.map
      (fun f ->
        let y = fresh_real s in
        let ly = Linexp.var y in
        assert_form s
          (Form.and_
             [
               Form.implies f (Form.eq ly (Linexp.const Q.one));
               Form.implies (Form.not_ f) (Form.eq ly (Linexp.const Q.zero));
             ]);
        ly)
      fs
  in
  assert_form s (Form.le (Linexp.sum indicators) (Linexp.const (Q.of_int k)))

let bound_real s ?lo ?hi v =
  s.has_model <- false;
  (match lo with
  | Some b ->
    if
      not
        (Simplex.assert_permanent s.simplex ~tvar:v ~side:Simplex.Lower
           ~bound:(QD.of_rat b))
    then s.unsat <- true
  | None -> ());
  match hi with
  | Some b ->
    if
      not
        (Simplex.assert_permanent s.simplex ~tvar:v ~side:Simplex.Upper
           ~bound:(QD.of_rat b))
    then s.unsat <- true
  | None -> ()

let check_inner s =
  if s.unsat then `Unsat
  else begin
    match Sat.solve s.sat with
    | `Unsat ->
      s.unsat <- true;
      `Unsat
    | `Sat ->
      (* snapshot the model before any further mutation *)
      let nb = Sat.nvars s.sat in
      s.bool_model <- Array.init nb (fun v -> Sat.value s.sat v);
      let all = Simplex.model_all s.simplex in
      s.real_model <-
        Array.init s.nreals (fun v ->
            if v < Array.length all then all.(v) else Q.zero);
      s.has_model <- true;
      `Sat
  end

let check s =
  Obs.Counter.incr obs_checks;
  (* distribution per check (deltas of the per-solver totals), recorded
     once per check — not on the SAT/simplex hot paths themselves *)
  let d0 = Sat.n_decisions s.sat in
  let p0 = Simplex.n_pivots s.simplex in
  let finish r =
    Obs.Histogram.observe_int obs_decisions_hist (Sat.n_decisions s.sat - d0);
    Obs.Histogram.observe_int obs_pivots_hist (Simplex.n_pivots s.simplex - p0);
    r
  in
  Obs.Trace.with_span "smt.check" (fun () ->
      match Obs.Timer.with_ obs_check_timer (fun () -> check_inner s) with
      | r -> finish r
      | exception e ->
        ignore (finish ());
        raise e)

let model_bool s v =
  if not s.has_model then failwith "Solver.model_bool: no model";
  if v < Array.length s.bool_model then s.bool_model.(v) else false

let model_real s v =
  if not s.has_model then failwith "Solver.model_real: no model";
  if v < Array.length s.real_model then s.real_model.(v) else Q.zero

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learned : int;
  pivots : int;
  bound_asserts : int;
  slack_rows : int;
  atom_cache_hits : int;
  atom_cache_misses : int;
  tseitin_clauses : int;
}

let stats s =
  {
    conflicts = Sat.n_conflicts s.sat;
    decisions = Sat.n_decisions s.sat;
    propagations = Sat.n_propagations s.sat;
    restarts = Sat.n_restarts s.sat;
    learned = Sat.n_learned s.sat;
    pivots = Simplex.n_pivots s.simplex;
    bound_asserts = Simplex.n_bound_asserts s.simplex;
    slack_rows = Simplex.n_slack_rows s.simplex;
    atom_cache_hits = s.atom_hits;
    atom_cache_misses = s.atom_misses;
    tseitin_clauses = s.tseitin_clauses;
  }

let stats_fields st =
  [
    ("conflicts", st.conflicts);
    ("decisions", st.decisions);
    ("propagations", st.propagations);
    ("restarts", st.restarts);
    ("learned", st.learned);
    ("pivots", st.pivots);
    ("bound_asserts", st.bound_asserts);
    ("slack_rows", st.slack_rows);
    ("atom_cache_hits", st.atom_cache_hits);
    ("atom_cache_misses", st.atom_cache_misses);
    ("tseitin_clauses", st.tseitin_clauses);
  ]

let json_of_stats st =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (stats_fields st))

let pp_stats fmt st =
  List.iter
    (fun (k, v) -> Format.fprintf fmt "%-18s %d@." k v)
    (stats_fields st)

(* model restricted to the variables the caller bothered to name: the
   debuggable face of a counterexample *)
let named_model s =
  if not s.has_model then []
  else begin
    let bools =
      Hashtbl.fold
        (fun v name acc ->
          if v < Array.length s.bool_model then
            (name, `Bool s.bool_model.(v)) :: acc
          else acc)
        s.bool_names []
    in
    let reals =
      Hashtbl.fold
        (fun v name acc ->
          if v < Array.length s.real_model then
            (name, `Real s.real_model.(v)) :: acc
          else acc)
        s.real_names []
    in
    List.sort (fun (a, _) (b, _) -> compare a b) (bools @ reals)
  end

let pp_model fmt s =
  if not s.has_model then Format.fprintf fmt "(no model)@."
  else
    List.iter
      (fun (name, v) ->
        match v with
        | `Bool b -> Format.fprintf fmt "%-12s %b@." name b
        | `Real q -> Format.fprintf fmt "%-12s %s@." name (Q.to_string q))
      (named_model s)
