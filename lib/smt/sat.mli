(** CDCL SAT solver with a theory hook (DPLL(T) backbone).

    Features: two-watched-literal propagation, VSIDS-style activities with
    phase saving, first-UIP conflict analysis, non-chronological
    backtracking, Luby restarts, incremental clause addition between
    [solve] calls.

    The theory plugin is notified of every literal assignment and asked for
    consistency at each propagation fixpoint; it reports conflicts as
    clauses over existing literals (it never propagates literals itself, so
    all propagation reasons stay inside the SAT core). *)

type t

type lit = int
(** [2*var] for the positive literal, [2*var+1] for the negative one. *)

val lit_of_var : int -> bool -> lit
val var_of_lit : lit -> int
val lit_is_pos : lit -> bool
val lit_neg : lit -> lit

type theory = {
  t_assert : lit -> lit array option;
      (** Called for each assigned literal, in trail order.  May return a
          conflict clause (all of whose literals are currently false). *)
  t_new_level : unit -> unit;
  t_backtrack : int -> unit;  (** Backtrack to the given decision level. *)
  t_check : final:bool -> lit array option;
      (** Consistency check at a propagation fixpoint; [final] when the
          Boolean assignment is total. *)
}

val no_theory : theory

val create : ?theory:theory -> unit -> t
val new_var : t -> int
val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause (backtracks to level 0 first). *)

val solve : t -> [ `Sat | `Unsat ]
val value : t -> int -> bool
(** Model value of a variable after [`Sat]. *)

val n_conflicts : t -> int
val n_decisions : t -> int
val n_propagations : t -> int

val n_restarts : t -> int
(** Luby restarts performed across all [solve] calls on this solver. *)

val n_learned : t -> int
(** Clauses learned by conflict analysis (unit learnts included). *)
