module Q = Numeric.Rat

module Imap = Map.Make (Int)

type t = { coeffs : Q.t Imap.t; const : Q.t }

let zero = { coeffs = Imap.empty; const = Q.zero }
let const c = { coeffs = Imap.empty; const = c }

let monomial c v =
  if Q.is_zero c then zero else { coeffs = Imap.singleton v c; const = Q.zero }

let var v = monomial Q.one v

let add_coeff v c m =
  Imap.update v
    (function
      | None -> if Q.is_zero c then None else Some c
      | Some c0 ->
        let c' = Q.add c0 c in
        if Q.is_zero c' then None else Some c')
    m

let add a b =
  {
    coeffs = Imap.fold add_coeff b.coeffs a.coeffs;
    const = Q.add a.const b.const;
  }

let scale k e =
  if Q.is_zero k then zero
  else { coeffs = Imap.map (Q.mul k) e.coeffs; const = Q.mul k e.const }

let neg e = scale Q.minus_one e
let sub a b = add a (neg b)
let sum es = List.fold_left add zero es
let terms e = Imap.bindings e.coeffs
let const_part e = e.const
let is_const e = Imap.is_empty e.coeffs

let eval assignment e =
  Imap.fold (fun v c acc -> Q.add acc (Q.mul c (assignment v))) e.coeffs e.const

let key e =
  let buf = Buffer.create 32 in
  Imap.iter
    (fun v c ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string c);
      Buffer.add_char buf ';')
    e.coeffs;
  Buffer.contents buf

let pp fmt e =
  let first = ref true in
  Imap.iter
    (fun v c ->
      Format.fprintf fmt "%s%a*x%d" (if !first then "" else " + ") Q.pp c v;
      first := false)
    e.coeffs;
  if not (Q.is_zero e.const) || !first then
    Format.fprintf fmt "%s%a" (if !first then "" else " + ") Q.pp e.const
