type lit = int

(* process-wide metrics (per-solver counts live in [t]); counter bumps are
   single field stores, cheap enough for the inner loops *)
let obs_decisions = Obs.Counter.make "smt.sat.decisions"
let obs_propagations = Obs.Counter.make "smt.sat.propagations"
let obs_conflicts = Obs.Counter.make "smt.sat.conflicts"
let obs_restarts = Obs.Counter.make "smt.sat.restarts"
let obs_learned = Obs.Counter.make "smt.sat.learned_clauses"

let lit_of_var v pos = (2 * v) + if pos then 0 else 1
let var_of_lit l = l lsr 1
let lit_is_pos l = l land 1 = 0
let lit_neg l = l lxor 1

type theory = {
  t_assert : lit -> lit array option;
  t_new_level : unit -> unit;
  t_backtrack : int -> unit;
  t_check : final:bool -> lit array option;
}

let no_theory =
  {
    t_assert = (fun _ -> None);
    t_new_level = (fun () -> ());
    t_backtrack = (fun _ -> ());
    t_check = (fun ~final:_ -> None);
  }

(* growable arrays (OCaml 5.1 has no Dynarray) *)
module Grow = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; len = 0; dummy }

  let push g x =
    if g.len = Array.length g.data then begin
      let d = Array.make (2 * g.len) g.dummy in
      Array.blit g.data 0 d 0 g.len;
      g.data <- d
    end;
    g.data.(g.len) <- x;
    g.len <- g.len + 1

  let get g i = g.data.(i)
  let len g = g.len
  let shrink g n = g.len <- n
end

type value = Undef | True | False

let neg_value = function Undef -> Undef | True -> False | False -> True

type t = {
  theory : theory;
  mutable nvars : int;
  mutable assign : value array; (* per var *)
  mutable level : int array; (* per var *)
  mutable reason : int array; (* per var: clause id or -1 *)
  mutable activity : float array; (* per var *)
  mutable phase : bool array; (* per var: saved phase *)
  mutable seen : bool array; (* per var: conflict-analysis scratch *)
  mutable watches : int list array; (* per lit: clause ids watching lit *)
  clauses : int array Grow.t;
  trail : int Grow.t; (* lits in assignment order *)
  trail_lim : int Grow.t; (* decision-level boundaries *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool; (* false once root-level conflict found *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned : int;
}

let create ?(theory = no_theory) () =
  {
    theory;
    nvars = 0;
    assign = Array.make 16 Undef;
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    seen = Array.make 16 false;
    watches = Array.make 32 [];
    clauses = Grow.create [||];
    trail = Grow.create 0;
    trail_lim = Grow.create 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned = 0;
  }

let nvars s = s.nvars
let n_conflicts s = s.conflicts
let n_decisions s = s.decisions
let n_propagations s = s.propagations
let n_restarts s = s.restarts
let n_learned s = s.learned

let grow_arrays s =
  let cap = Array.length s.assign in
  if s.nvars > cap then begin
    let ncap = max (2 * cap) s.nvars in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    s.assign <- extend s.assign Undef;
    s.level <- extend s.level 0;
    s.reason <- extend s.reason (-1);
    s.activity <- extend s.activity 0.0;
    s.phase <- extend s.phase false;
    s.seen <- extend s.seen false;
    let w = Array.make (2 * ncap) [] in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    s.watches <- w
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- s.nvars + 1;
  grow_arrays s;
  v

let value_of_lit s l =
  let v = s.assign.(var_of_lit l) in
  if lit_is_pos l then v else neg_value v

let current_level s = Grow.len s.trail_lim

(* enqueue a literal implied with the given reason clause (-1 = decision) *)
let enqueue s l reason =
  let v = var_of_lit l in
  assert (s.assign.(v) = Undef);
  s.assign.(v) <- (if lit_is_pos l then True else False);
  s.level.(v) <- current_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit_is_pos l;
  Grow.push s.trail l

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activities s = s.var_inc <- s.var_inc /. 0.95

(* conflict being processed: either a stored clause id or an ad-hoc lits
   array coming from the theory solver *)
type conflict = Cls of int | Ad_hoc of lit array

let conflict_lits s = function
  | Cls id -> Grow.get s.clauses id
  | Ad_hoc a -> a

exception Found_conflict of conflict

(* Boolean constraint propagation + theory assertion, in trail order. *)
let propagate s =
  try
    while s.qhead < Grow.len s.trail do
      let l = Grow.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      Obs.Counter.incr obs_propagations;
      (* process clauses watching ¬l *)
      let nl = lit_neg l in
      let ws = s.watches.(nl) in
      s.watches.(nl) <- [];
      let rec process = function
        | [] -> ()
        | cid :: rest -> (
          let c = Grow.get s.clauses cid in
          (* ensure c.(1) is the false watch nl *)
          if c.(0) = nl then begin
            c.(0) <- c.(1);
            c.(1) <- nl
          end;
          if value_of_lit s c.(0) = True then begin
            (* clause satisfied; keep watching nl *)
            s.watches.(nl) <- cid :: s.watches.(nl);
            process rest
          end
          else begin
            (* look for a new watch *)
            let n = Array.length c in
            let rec find i =
              if i >= n then None
              else if value_of_lit s c.(i) <> False then Some i
              else find (i + 1)
            in
            match find 2 with
            | Some i ->
              c.(1) <- c.(i);
              c.(i) <- nl;
              s.watches.(c.(1)) <- cid :: s.watches.(c.(1));
              process rest
            | None ->
              (* unit or conflicting *)
              s.watches.(nl) <- cid :: s.watches.(nl);
              if value_of_lit s c.(0) = False then begin
                (* conflict: restore remaining watches and abort *)
                s.watches.(nl) <- List.rev_append rest s.watches.(nl);
                s.qhead <- Grow.len s.trail;
                raise (Found_conflict (Cls cid))
              end
              else begin
                enqueue s c.(0) cid;
                process rest
              end
          end)
      in
      process ws;
      (* notify the theory of the assignment *)
      match s.theory.t_assert l with
      | None -> ()
      | Some cl -> raise (Found_conflict (Ad_hoc cl))
    done;
    None
  with Found_conflict c -> Some c

(* backtrack to [lvl], undoing assignments *)
let backtrack_to s lvl =
  if current_level s > lvl then begin
    let bound = Grow.get s.trail_lim lvl in
    for i = Grow.len s.trail - 1 downto bound do
      let v = var_of_lit (Grow.get s.trail i) in
      s.assign.(v) <- Undef;
      s.reason.(v) <- -1
    done;
    Grow.shrink s.trail bound;
    Grow.shrink s.trail_lim lvl;
    s.qhead <- bound;
    s.theory.t_backtrack lvl
  end

(* First-UIP conflict analysis.  Returns (learnt clause, backtrack level);
   learnt.(0) is the asserting literal. *)
let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (Grow.len s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  let cleanup = ref [] in
  while !continue do
    let lits = conflict_lits s !confl in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of_lit q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            cleanup := v :: !cleanup;
            bump_var s v;
            if s.level.(v) >= current_level s then incr counter
            else learnt := q :: !learnt
          end
        end)
      lits;
    (* pick the next literal on the trail to resolve on *)
    let rec next_seen i =
      let v = var_of_lit (Grow.get s.trail i) in
      if s.seen.(v) then i else next_seen (i - 1)
    in
    index := next_seen !index;
    let pl = Grow.get s.trail !index in
    decr index;
    let v = var_of_lit pl in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      p := lit_neg pl;
      continue := false
    end
    else begin
      p := pl;
      assert (s.reason.(v) >= 0);
      confl := Cls s.reason.(v)
    end
  done;
  List.iter (fun v -> s.seen.(v) <- false) !cleanup;
  let learnt = Array.of_list (!p :: !learnt) in
  (* backtrack level: second-highest level in learnt *)
  let blevel =
    if Array.length learnt = 1 then 0
    else begin
      (* move the highest-level non-asserting literal to position 1 *)
      let max_i = ref 1 in
      for i = 2 to Array.length learnt - 1 do
        if s.level.(var_of_lit learnt.(i)) > s.level.(var_of_lit learnt.(!max_i))
        then max_i := i
      done;
      let t = learnt.(1) in
      learnt.(1) <- learnt.(!max_i);
      learnt.(!max_i) <- t;
      s.level.(var_of_lit learnt.(1))
    end
  in
  (learnt, blevel)

let attach_clause s c =
  Grow.push s.clauses c;
  let cid = Grow.len s.clauses - 1 in
  s.watches.(c.(0)) <- cid :: s.watches.(c.(0));
  s.watches.(c.(1)) <- cid :: s.watches.(c.(1));
  cid

let add_clause s lits =
  if s.ok then begin
    backtrack_to s 0;
    (* simplify at root level *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (lit_neg l) lits) lits
      || List.exists (fun l -> value_of_lit s l = True) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_of_lit s l <> False) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> (
        enqueue s l (-1);
        match propagate s with None -> () | Some _ -> s.ok <- false)
      | l0 :: l1 :: _ ->
        ignore l0;
        ignore l1;
        ignore (attach_clause s (Array.of_list lits))
    end
  end

(* Handle a conflict: learn, backtrack, assert.  Returns false if the
   conflict is at root level (unsat). *)
let handle_conflict s confl =
  s.conflicts <- s.conflicts + 1;
  Obs.Counter.incr obs_conflicts;
  if current_level s = 0 then false
  else begin
    (* if the conflict clause has no literal at the current level (possible
       for theory conflicts), backtrack to the highest level in it first *)
    let lits = conflict_lits s confl in
    if Array.length lits = 0 then false
    else begin
      let max_level =
        Array.fold_left (fun m l -> max m (s.level.(var_of_lit l))) 0 lits
      in
      if max_level = 0 then false
      else begin
        let confl =
          if max_level < current_level s then begin
            backtrack_to s max_level;
            (* re-express as ad-hoc (clause ids survive backtracking) *)
            confl
          end
          else confl
        in
        let learnt, blevel = analyze s confl in
        s.learned <- s.learned + 1;
        Obs.Counter.incr obs_learned;
        backtrack_to s blevel;
        (if Array.length learnt = 1 then begin
           enqueue s learnt.(0) (-1)
         end
         else begin
           let cid = attach_clause s learnt in
           enqueue s learnt.(0) cid
         end);
        decay_activities s;
        true
      end
    end
  end

let pick_branch_var s =
  let best = ref (-1) in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = Undef then
      if !best = -1 || s.activity.(v) > s.activity.(!best) then best := v
  done;
  !best

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let solve s =
  if not s.ok then `Unsat
  else begin
    backtrack_to s 0;
    (match propagate s with Some _ -> s.ok <- false | None -> ());
    if not s.ok then `Unsat
    else begin
      let result = ref None in
      let restart_count = ref 0 in
      let conflict_budget = ref (100 * luby 1) in
      while !result = None do
        match propagate s with
        | Some confl ->
          if not (handle_conflict s confl) then result := Some `Unsat
          else begin
            decr conflict_budget;
            if !conflict_budget <= 0 then begin
              incr restart_count;
              s.restarts <- s.restarts + 1;
              Obs.Counter.incr obs_restarts;
              conflict_budget := 100 * luby (!restart_count + 1);
              backtrack_to s 0
            end
          end
        | None -> (
          let all_assigned = Grow.len s.trail = s.nvars in
          match s.theory.t_check ~final:all_assigned with
          | Some confl ->
            if Array.length confl = 0 then result := Some `Unsat
            else if not (handle_conflict s (Ad_hoc confl)) then
              result := Some `Unsat
          | None ->
            if all_assigned then result := Some `Sat
            else begin
              let v = pick_branch_var s in
              s.decisions <- s.decisions + 1;
              Obs.Counter.incr obs_decisions;
              Grow.push s.trail_lim (Grow.len s.trail);
              s.theory.t_new_level ();
              enqueue s (lit_of_var v s.phase.(v)) (-1)
            end)
      done;
      match !result with Some r -> r | None -> assert false
    end
  end

let value s v = s.assign.(v) = True
