(** Quantifier-free formulas over Boolean variables and linear rational
    arithmetic atoms.  Variables are solver-issued integers (see
    {!Solver.fresh_bool} and {!Solver.fresh_real}). *)

type op = Le | Lt  (** atom [e op 0] *)

type t =
  | True
  | False
  | Bvar of int
  | Atom of op * Linexp.t
  | Not of t
  | And of t list
  | Or of t list

val tru : t
val fls : t
val bvar : int -> t
val not_ : t -> t

val and_ : t list -> t
(** Smart constructor: drops [True] conjuncts, short-circuits to [False]
    on a [False] conjunct, splices nested [And]s in place (the result
    never directly contains an [And] child), and collapses empty and
    singleton lists. *)

val or_ : t list -> t
(** Dual of {!and_}: drops [False], short-circuits on [True], splices
    nested [Or]s, collapses empty/singleton lists. *)

val implies : t -> t -> t
(** Built on {!or_}/{!not_}, so constant antecedents fold:
    [implies tru b = b], [implies fls b = tru]. *)

val iff : t -> t -> t

val ite : t -> t -> t -> t
(** [ite c a b] folds to [a]/[b] when [c] is constant. *)

(** Comparisons between linear expressions. *)

val le : Linexp.t -> Linexp.t -> t
val lt : Linexp.t -> Linexp.t -> t
val ge : Linexp.t -> Linexp.t -> t
val gt : Linexp.t -> Linexp.t -> t
val eq : Linexp.t -> Linexp.t -> t
val neq : Linexp.t -> Linexp.t -> t

val pp : Format.formatter -> t -> unit
