(** Quantifier-free formulas over Boolean variables and linear rational
    arithmetic atoms.  Variables are solver-issued integers (see
    {!Solver.fresh_bool} and {!Solver.fresh_real}). *)

type op = Le | Lt  (** atom [e op 0] *)

type t =
  | True
  | False
  | Bvar of int
  | Atom of op * Linexp.t
  | Not of t
  | And of t list
  | Or of t list

val tru : t
val fls : t
val bvar : int -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t

(** Comparisons between linear expressions. *)

val le : Linexp.t -> Linexp.t -> t
val lt : Linexp.t -> Linexp.t -> t
val ge : Linexp.t -> Linexp.t -> t
val gt : Linexp.t -> Linexp.t -> t
val eq : Linexp.t -> Linexp.t -> t
val neq : Linexp.t -> Linexp.t -> t

val pp : Format.formatter -> t -> unit
