(** Theory solver for quantifier-free linear rational arithmetic, after
    Dutertre & de Moura, "A Fast Linear-Arithmetic Solver for DPLL(T)".

    Variables carry delta-rational assignments and optional lower/upper
    bounds; linear constraints are turned into bounds on slack variables
    whose defining rows live in a simplex tableau.  Strict inequalities are
    represented with the infinitesimal component of {!Numeric.Qdelta}.

    The solver plugs into {!Sat} through {!theory_hooks}: SAT literals are
    registered as atoms [x <= c] / [x >= c]; asserting a literal tightens a
    bound (detecting immediate bound clashes), and [check] runs simplex
    pivoting with Bland's rule, producing minimal conflict clauses from the
    bounds of an infeasible row. *)

type t

val create : unit -> t

val new_var : t -> int
(** Fresh theory variable (initially unbounded, nonbasic, value 0). *)

val define_slack : t -> Linexp.t -> int
(** [define_slack t e] returns a variable constrained to equal [e] (which
    must have no constant part).  Equal expressions share one slack. *)

type side = Upper | Lower

val register_atom :
  t -> sat_var:int -> tvar:int -> side:side -> bound:Numeric.Qdelta.t -> unit
(** Declare that SAT variable [sat_var] means [tvar <= bound] ([Upper]) or
    [tvar >= bound] ([Lower]); the negated literal asserts the complement
    with the delta component adjusted. *)

val assert_permanent : t -> tvar:int -> side:side -> bound:Numeric.Qdelta.t -> bool
(** Root-level bound with no associated literal (e.g. structural variable
    ranges).  Returns [false] when it is immediately inconsistent. *)

val theory_hooks : t -> Sat.theory

val model_value : t -> int -> Numeric.Rat.t
(** Value of a variable in the last satisfying assignment, with a concrete
    epsilon substituted for the infinitesimal. *)

val model_all : t -> Numeric.Rat.t array
(** All variable values, computing the epsilon once. *)

val check_now : t -> Sat.lit array option
(** Run a consistency check directly (used by tests). *)

val n_pivots : t -> int
(** Simplex pivots performed by this instance. *)

val n_bound_asserts : t -> int
(** Bound assertions received (redundant ones included). *)

val n_slack_rows : t -> int
(** Slack variables with tableau rows created by {!define_slack}. *)

(**/**)

val prof_pivots : int ref
(** Cumulative pivot count (solver statistics, used by benches). *)

val prof_pops : int ref
(** Cumulative worklist pops. *)

(**/**)
