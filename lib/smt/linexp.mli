(** Linear expressions [sum_i c_i * x_i + const] over integer-indexed real
    variables with exact rational coefficients. *)

type t

val zero : t
val const : Numeric.Rat.t -> t
val var : int -> t
val monomial : Numeric.Rat.t -> int -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Numeric.Rat.t -> t -> t
val sum : t list -> t

val terms : t -> (int * Numeric.Rat.t) list
(** Sorted by variable index; no zero coefficients. *)

val const_part : t -> Numeric.Rat.t
val is_const : t -> bool
val eval : (int -> Numeric.Rat.t) -> t -> Numeric.Rat.t
val key : t -> string
(** Canonical key of the terms (ignores the constant part). *)

val pp : Format.formatter -> t -> unit
