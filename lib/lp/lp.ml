module Q = Numeric.Rat
module Imap = Map.Make (Int)
module P = Analysis.Presolve.Exact

type result =
  | Optimal of { objective : Q.t; values : Q.t array }
  | Infeasible
  | Unbounded

let presolve_default = ref true

(* shared with Flp: both solvers funnel through the same presolve rules *)
let c_rows_eliminated = Obs.Counter.make "lp.presolve.rows_eliminated"
let c_bounds_tightened = Obs.Counter.make "lp.presolve.bounds_tightened"
let c_vars_fixed = Obs.Counter.make "lp.presolve.vars_fixed"
let c_presolve_infeasible = Obs.Counter.make "lp.presolve.infeasible"
let c_pivots = Obs.Counter.make "lp.exact.pivots"
let h_pivots = Obs.Histogram.make "lp.exact.pivots_per_solve"

(* shared with Flp, like the presolve counters *)
let h_presolve_rows = Obs.Histogram.make "lp.presolve.rows_eliminated_per_solve"

(* a constraint as recorded before the tableau exists; [<=] and [>=] over
   the same expression merge into one two-sided pending row *)
type pending = {
  pterms : (int * Q.t) list;
  mutable plo : Q.t option;
  mutable phi : Q.t option;
  order : int; (* insertion rank, to keep tableau construction stable *)
}

type t = {
  mutable nvars : int;
  mutable lo : Q.t option array;
  mutable hi : Q.t option array;
  mutable beta : Q.t array;
  mutable rows : Q.t Imap.t Imap.t; (* basic var -> row over nonbasic vars *)
  pending : (string, pending) Hashtbl.t; (* expression key -> constraint *)
  mutable n_pending : int;
  mutable pivots : int;
  mutable user_vars : int; (* vars visible to the caller (before slacks) *)
  presolve : bool;
  mutable built : bool;
}

let create ?presolve () =
  {
    nvars = 0;
    lo = Array.make 16 None;
    hi = Array.make 16 None;
    beta = Array.make 16 Q.zero;
    rows = Imap.empty;
    pending = Hashtbl.create 64;
    n_pending = 0;
    pivots = 0;
    user_vars = 0;
    presolve = Option.value presolve ~default:!presolve_default;
    built = false;
  }

let n_pivots t = t.pivots

let grow t =
  let cap = Array.length t.beta in
  if t.nvars > cap then begin
    let ncap = max (2 * cap) t.nvars in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.lo <- extend t.lo None;
    t.hi <- extend t.hi None;
    t.beta <- extend t.beta Q.zero
  end

let new_var ?lo ?hi t =
  let v = t.nvars in
  t.nvars <- t.nvars + 1;
  grow t;
  t.lo.(v) <- lo;
  t.hi.(v) <- hi;
  (* start at a bound-respecting value *)
  (t.beta.(v) <-
    (match (lo, hi) with
    | Some l, _ when Q.( > ) l Q.zero -> l
    | _, Some h when Q.( < ) h Q.zero -> h
    | _ -> Q.zero));
  v

let add_var ?lo ?hi ?name t =
  ignore name;
  if t.built then invalid_arg "Lp.add_var: tableau already built";
  let v = new_var ?lo ?hi t in
  t.user_vars <- t.user_vars + 1;
  assert (v = t.user_vars - 1);
  v

(* warm start: set a variable's initial value (clamped to its bounds);
   call before minimize *)
let set_initial t v x =
  let x = match t.lo.(v) with Some l -> Q.max l x | None -> x in
  let x = match t.hi.(v) with Some h -> Q.min h x | None -> x in
  t.beta.(v) <- x

(* substitute basic variables out of a term map *)
let normalize_terms t terms =
  Imap.fold
    (fun v c acc ->
      let merge w cw acc =
        Imap.update w
          (function
            | None -> if Q.is_zero cw then None else Some cw
            | Some c0 ->
              let s = Q.add c0 cw in
              if Q.is_zero s then None else Some s)
          acc
      in
      match Imap.find_opt v t.rows with
      | None -> merge v c acc
      | Some row -> Imap.fold (fun w cw acc -> merge w (Q.mul c cw) acc) row acc)
    terms Imap.empty

let row_value t row =
  Imap.fold (fun v c acc -> Q.add acc (Q.mul c t.beta.(v))) row Q.zero

(* record (or tighten) the pending constraint lo <= e <= hi; bounds are
   shifted by the constant part of e so the stored row is pure terms *)
let record_constraint t ?lo ?hi e =
  if t.built then invalid_arg "Lp: constraint added after minimize";
  let const = Smt.Linexp.const_part e in
  let key = Smt.Linexp.key e in
  let p =
    match Hashtbl.find_opt t.pending key with
    | Some p -> p
    | None ->
      let p =
        {
          pterms = Smt.Linexp.terms e;
          plo = None;
          phi = None;
          order = t.n_pending;
        }
      in
      t.n_pending <- t.n_pending + 1;
      Hashtbl.add t.pending key p;
      p
  in
  let tighten current candidate keep_max =
    match (current, candidate) with
    | cur, None -> cur
    | None, Some c -> Some c
    | Some a, Some b -> Some (if keep_max then Q.max a b else Q.min a b)
  in
  p.plo <- tighten p.plo (Option.map (fun b -> Q.sub b const) lo) true;
  p.phi <- tighten p.phi (Option.map (fun b -> Q.sub b const) hi) false

let add_le t e b = record_constraint t ~hi:b e
let add_ge t e b = record_constraint t ~lo:b e
let add_eq t e b = record_constraint t ~lo:b ~hi:b e

(* materialise one constraint row as a bounded slack basic variable *)
let install_row t terms lo hi =
  let term_map =
    List.fold_left (fun m (v, c) -> Imap.add v c m) Imap.empty terms
  in
  let row = normalize_terms t term_map in
  let s = new_var t in
  t.lo.(s) <- lo;
  t.hi.(s) <- hi;
  t.rows <- Imap.add s row t.rows;
  t.beta.(s) <- row_value t row

let report_stats (st : P.stats) =
  Obs.Counter.add c_rows_eliminated st.P.rows_eliminated;
  Obs.Counter.add c_bounds_tightened st.P.bounds_tightened;
  Obs.Counter.add c_vars_fixed st.P.vars_fixed;
  Obs.Histogram.observe_int h_presolve_rows st.P.rows_eliminated

(* deferred tableau construction: presolve the pending rows (unless
   disabled), then build slack rows only for the survivors *)
let build t =
  t.built <- true;
  let pend = Hashtbl.fold (fun _ p acc -> p :: acc) t.pending [] in
  let pend = List.sort (fun a b -> compare a.order b.order) pend in
  if not t.presolve then begin
    List.iter (fun p -> install_row t p.pterms p.plo p.phi) pend;
    `Ok
  end
  else begin
    let n = t.user_vars in
    let lo = Array.init n (fun v -> t.lo.(v)) in
    let hi = Array.init n (fun v -> t.hi.(v)) in
    let rows =
      List.map (fun p -> { P.terms = p.pterms; lo = p.plo; hi = p.phi }) pend
    in
    match P.run ~n_vars:n ~lo ~hi rows with
    | P.Infeasible { stats; _ } ->
      report_stats stats;
      Obs.Counter.incr c_presolve_infeasible;
      `Infeasible
    | P.Reduced { lo; hi; rows; fixed; stats } ->
      report_stats stats;
      for v = 0 to n - 1 do
        t.lo.(v) <- lo.(v);
        t.hi.(v) <- hi.(v)
      done;
      List.iter (fun (v, x) -> t.beta.(v) <- x) fixed;
      (* re-clamp warm starts to the tightened box so every nonbasic
         variable starts within bounds *)
      for v = 0 to n - 1 do
        (match t.lo.(v) with
        | Some l when Q.( < ) t.beta.(v) l -> t.beta.(v) <- l
        | _ -> ());
        match t.hi.(v) with
        | Some h when Q.( > ) t.beta.(v) h -> t.beta.(v) <- h
        | _ -> ()
      done;
      List.iter (fun (r : P.row) -> install_row t r.P.terms r.P.lo r.P.hi) rows;
      `Ok
  end

(* a fresh basic variable equal to e - const(e), never shared: the
   objective variable must stay basic and unbounded through phase I *)
let fresh_slack t e =
  let terms =
    List.fold_left
      (fun m (v, c) -> Imap.add v c m)
      Imap.empty (Smt.Linexp.terms e)
  in
  let row = normalize_terms t terms in
  let s = new_var t in
  t.rows <- Imap.add s row t.rows;
  t.beta.(s) <- row_value t row;
  s

let below_lo t x = match t.lo.(x) with Some b -> Q.( < ) t.beta.(x) b | None -> false
let above_hi t x = match t.hi.(x) with Some b -> Q.( > ) t.beta.(x) b | None -> false
let can_increase t x = match t.hi.(x) with Some b -> Q.( < ) t.beta.(x) b | None -> true
let can_decrease t x = match t.lo.(x) with Some b -> Q.( > ) t.beta.(x) b | None -> true

let pivot t xi xj =
  (* exact pivots are the expensive unit of work; polling here lets a
     cooperative cancel land mid-solve instead of after it *)
  Obs.Probe.poll ();
  t.pivots <- t.pivots + 1;
  Obs.Counter.incr c_pivots;
  let row_i = Imap.find xi t.rows in
  let a = Imap.find xj row_i in
  let inv_a = Q.inv a in
  let row_j =
    Imap.fold
      (fun v c acc ->
        if v = xj then acc else Imap.add v (Q.neg (Q.mul c inv_a)) acc)
      row_i
      (Imap.singleton xi inv_a)
  in
  let rows = Imap.remove xi t.rows in
  let rows =
    Imap.map
      (fun row ->
        match Imap.find_opt xj row with
        | None -> row
        | Some c ->
          let row = Imap.remove xj row in
          Imap.fold
            (fun v cv acc ->
              Imap.update v
                (function
                  | None -> Some (Q.mul c cv)
                  | Some c0 ->
                    let s = Q.add c0 (Q.mul c cv) in
                    if Q.is_zero s then None else Some s)
                acc)
            row_j row)
      rows
  in
  t.rows <- Imap.add xj row_j rows

let pivot_and_update t xi xj v =
  let row_i = Imap.find xi t.rows in
  let a = Imap.find xj row_i in
  let theta = Q.div (Q.sub v t.beta.(xi)) a in
  t.beta.(xi) <- v;
  t.beta.(xj) <- Q.add t.beta.(xj) theta;
  Imap.iter
    (fun b row ->
      if b <> xi then
        match Imap.find_opt xj row with
        | None -> ()
        | Some c -> t.beta.(b) <- Q.add t.beta.(b) (Q.mul c theta))
    t.rows;
  pivot t xi xj

(* phase I: make the assignment respect all bounds (Bland's rule) *)
let feasibility t =
  let rec loop () =
    let violated =
      Imap.fold
        (fun b _ acc ->
          match acc with
          | Some _ -> acc
          | None -> if below_lo t b || above_hi t b then Some b else None)
        t.rows None
    in
    match violated with
    | None -> true
    | Some xi ->
      let row = Imap.find xi t.rows in
      let too_low = below_lo t xi in
      let xj =
        Imap.fold
          (fun v c acc ->
            match acc with
            | Some _ -> acc
            | None ->
              let ok =
                if too_low = (Q.sign c > 0) then can_increase t v
                else can_decrease t v
              in
              if ok then Some v else None)
          row None
      in
      (match xj with
      | None -> false
      | Some xj ->
        let target =
          if too_low then Option.get t.lo.(xi) else Option.get t.hi.(xi)
        in
        pivot_and_update t xi xj target;
        loop ())
  in
  loop ()

(* adjust a nonbasic variable by [step], updating dependent basics *)
let shift_nonbasic t xj step =
  if not (Q.is_zero step) then begin
    Imap.iter
      (fun b row ->
        match Imap.find_opt xj row with
        | None -> ()
        | Some c -> t.beta.(b) <- Q.add t.beta.(b) (Q.mul c step))
      t.rows;
    t.beta.(xj) <- Q.add t.beta.(xj) step
  end

(* phase II: minimise basic objective variable z (which has no bounds) *)
let optimize t z =
  let rec loop () =
    let row_z = Imap.find z t.rows in
    (* entering variable: smallest index whose move decreases z *)
    let entering =
      Imap.fold
        (fun v c acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let dir = -Q.sign c in
            if dir > 0 && can_increase t v then Some (v, c, 1)
            else if dir < 0 && can_decrease t v then Some (v, c, -1)
            else None)
        row_z None
    in
    match entering with
    | None -> `Optimal
    | Some (xj, _, dir) ->
      (* ratio test: smallest step that drives some var to a bound *)
      let dirq = Q.of_int dir in
      let best = ref None in
      (* own bound of xj *)
      (match
         if dir > 0 then Option.map (fun h -> Q.sub h t.beta.(xj)) t.hi.(xj)
         else Option.map (fun l -> Q.sub t.beta.(xj) l) t.lo.(xj)
       with
      | Some limit -> best := Some (limit, `Own)
      | None -> ());
      Imap.iter
        (fun xi row ->
          if xi <> z then
            match Imap.find_opt xj row with
            | None -> ()
            | Some c ->
              let rate = Q.mul c dirq in
              (* beta_i moves by rate * step *)
              let limit =
                if Q.sign rate > 0 then
                  Option.map (fun h -> Q.div (Q.sub h t.beta.(xi)) rate) t.hi.(xi)
                else if Q.sign rate < 0 then
                  Option.map (fun l -> Q.div (Q.sub l t.beta.(xi)) rate) t.lo.(xi)
                else None
              in
              match limit with
              | None -> ()
              | Some lim -> (
                match !best with
                | Some (b, _) when Q.( <= ) b lim -> ()
                | _ -> best := Some (lim, `Basic xi)))
        t.rows;
      (match !best with
      | None -> `Unbounded
      | Some (step, `Own) ->
        shift_nonbasic t xj (Q.mul dirq step);
        loop ()
      | Some (step, `Basic xi) ->
        let blocked_value =
          let rate = Q.mul (Imap.find xj (Imap.find xi t.rows)) dirq in
          if Q.sign rate > 0 then Option.get t.hi.(xi) else Option.get t.lo.(xi)
        in
        ignore step;
        (* move xj so that xi lands exactly on its blocking bound, pivot *)
        pivot_and_update t xi xj blocked_value;
        loop ())
  in
  loop ()

let minimize t obj =
  let p0 = t.pivots in
  let finish r =
    Obs.Histogram.observe_int h_pivots (t.pivots - p0);
    r
  in
  Obs.Trace.with_span "lp.exact.minimize" @@ fun () ->
  finish
    (match build t with
    | `Infeasible -> Infeasible
    | `Ok -> (
      let z =
        fresh_slack t
          (Smt.Linexp.sub obj (Smt.Linexp.const (Smt.Linexp.const_part obj)))
      in
      let const = Smt.Linexp.const_part obj in
      if not (feasibility t) then Infeasible
      else
        match optimize t z with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let values = Array.init t.user_vars (fun v -> t.beta.(v)) in
          Optimal { objective = Q.add t.beta.(z) const; values }))

let maximize t obj =
  match minimize t (Smt.Linexp.neg obj) with
  | Optimal { objective; values } -> Optimal { objective = Q.neg objective; values }
  | (Infeasible | Unbounded) as r -> r
