(** Exact rational linear programming.

    Bounded-variable simplex: phase I restores feasibility of the bound
    system (Dutertre–de Moura style pivoting), phase II minimises a linear
    objective with Bland's anti-cycling rule.  All arithmetic is exact, so
    optima are exact rationals — this is the reference optimiser the OPF
    module uses, and the ground truth the SMT bounded-cost OPF model is
    validated against.

    Constraints are recorded, not eagerly turned into tableau rows: the
    tableau is built on the first [minimize]/[maximize] call, after an
    optimum-preserving presolve ({!Analysis.Presolve}) has fixed
    variables, converted singleton rows to bounds, merged proportional
    rows and dropped redundant ones.  Presolve activity is visible through
    the [lp.presolve.*] and [lp.exact.pivots] {!Obs} counters. *)

type t

type result =
  | Optimal of { objective : Numeric.Rat.t; values : Numeric.Rat.t array }
      (** [values] is indexed by variable id. *)
  | Infeasible
  | Unbounded

val presolve_default : bool ref
(** Whether newly created solvers presolve (default [true]); [create]'s
    [?presolve] overrides it per instance. *)

val create : ?presolve:bool -> unit -> t

val add_var :
  ?lo:Numeric.Rat.t -> ?hi:Numeric.Rat.t -> ?name:string -> t -> int
(** A new variable; absent bounds mean free in that direction. *)

val set_initial : t -> int -> Numeric.Rat.t -> unit
(** Warm start: initial value for a variable (clamped to bounds).  Call
    before [minimize]. *)

val add_le : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit
val add_ge : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit
val add_eq : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit

val minimize : t -> Smt.Linexp.t -> result
(** Builds the tableau (one-shot: adding constraints afterwards raises
    [Invalid_argument]) and solves. *)

val maximize : t -> Smt.Linexp.t -> result

val n_pivots : t -> int
(** Total pivots performed so far (for benches). *)
