(** Exact rational linear programming.

    Bounded-variable simplex: phase I restores feasibility of the bound
    system (Dutertre–de Moura style pivoting), phase II minimises a linear
    objective with Bland's anti-cycling rule.  All arithmetic is exact, so
    optima are exact rationals — this is the reference optimiser the OPF
    module uses, and the ground truth the SMT bounded-cost OPF model is
    validated against. *)

type t

type result =
  | Optimal of { objective : Numeric.Rat.t; values : Numeric.Rat.t array }
      (** [values] is indexed by variable id. *)
  | Infeasible
  | Unbounded

val create : unit -> t

val add_var :
  ?lo:Numeric.Rat.t -> ?hi:Numeric.Rat.t -> ?name:string -> t -> int
(** A new variable; absent bounds mean free in that direction. *)

val set_initial : t -> int -> Numeric.Rat.t -> unit
(** Warm start: initial value for a variable (clamped to bounds).  Call
    before adding constraints that mention it. *)

val add_le : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit
val add_ge : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit
val add_eq : t -> Smt.Linexp.t -> Numeric.Rat.t -> unit

val minimize : t -> Smt.Linexp.t -> result
val maximize : t -> Smt.Linexp.t -> result

val n_pivots : t -> int
(** Total pivots performed so far (for benches). *)
