(* Certified float LP: run Flp, then prove its verdict after the fact
   with one exact rational refactorization of the final basis.  On any
   gap — certificate rejected, float stall, float infeasible/unbounded —
   re-solve with the exact simplex, warm-started from the float point, so
   every answer leaving this module is exact. *)

module Q = Numeric.Rat
module B = Numeric.Bigint
module Imap = Map.Make (Int)
module P = Analysis.Presolve.Exact

let c_ok = Obs.Counter.make "lp.certify.ok"
let c_fail = Obs.Counter.make "lp.certify.fail"
let c_fallback = Obs.Counter.make "lp.certify.fallback"
let h_seconds = Obs.Histogram.make "lp.certify.seconds"

(* presolve runs here (exactly, before the float solve) rather than inside
   Flp, so its activity reports through the same shared counters *)
let c_rows_eliminated = Obs.Counter.make "lp.presolve.rows_eliminated"
let c_bounds_tightened = Obs.Counter.make "lp.presolve.bounds_tightened"
let c_vars_fixed = Obs.Counter.make "lp.presolve.vars_fixed"
let c_presolve_infeasible = Obs.Counter.make "lp.presolve.infeasible"
let h_presolve_rows = Obs.Histogram.make "lp.presolve.rows_eliminated_per_solve"

type row = { terms : (int * Q.t) list; rlo : Q.t option; rhi : Q.t option }

type t = {
  mutable nvars : int;
  mutable vars : (Q.t option * Q.t option) list; (* reversed *)
  mutable rows : row list; (* reversed *)
  warm : (int, Q.t) Hashtbl.t;
}

type outcome =
  | Optimal of { objective : Q.t; values : Q.t array; certified : bool }
  | Infeasible
  | Unbounded

let create () = { nvars = 0; vars = []; rows = []; warm = Hashtbl.create 16 }

let add_var ?lo ?hi t =
  let v = t.nvars in
  t.nvars <- v + 1;
  t.vars <- (lo, hi) :: t.vars;
  v

let set_initial t v x = Hashtbl.replace t.warm v x

(* merge duplicate variables and drop exact zeros, so the rows handed to
   the float solver and to the exact check are the same linear forms *)
let canon terms =
  let merged =
    List.fold_left
      (fun acc (v, c) ->
        Imap.update v
          (function None -> Some c | Some c0 -> Some (Q.add c0 c))
          acc)
      Imap.empty terms
  in
  Imap.fold
    (fun v c acc -> if Q.is_zero c then acc else (v, c) :: acc)
    merged []
  |> List.rev

let add_row t ?rlo ?rhi terms = t.rows <- { terms = canon terms; rlo; rhi } :: t.rows
let add_le t terms b = add_row t ~rhi:b terms
let add_ge t terms b = add_row t ~rlo:b terms
let add_eq t terms b = add_row t ~rlo:b ~rhi:b terms

(* ---- exact certificate check ---- *)

exception Reject of string

(* The (post-presolve) problem is: minimize c.x subject to the variable
   box and, per row k, [rlo_k <= a_k . x <= rhi_k] — equivalently
   [a_k . x - s_k = 0] with slack s_k boxed by the row bounds.  Variable
   ids: user vars [0..n-1], slack for row k at [n + k] (the layout Flp
   produces under [~presolve:false] with {!Flp.add_range}).

   Given the certificate's basic/nonbasic split: pin every nonbasic
   variable to its claimed bound (exactly), solve the square basic system
   for the basic values, and check primal bounds plus the dual sign
   conditions.  All in rationals — if it passes, the point is a true
   optimum of the exact problem, not merely of its float shadow.

   The basic system is never materialized at size m.  A basic slack is a
   cost-free singleton column (-1 in its own row only): its row
   determines the slack value after the structural variables are known,
   and its dual multiplier is pinned to zero.  What remains is a dense
   core with one row per *binding* row (slack nonbasic) and one column
   per basic user variable — at most one per generator in the OPF
   encoding — which goes to the fraction-free {!Linalg.Bareiss} kernel.
   Primal and dual core solves come back as integer numerators over one
   shared denominator, so the O(m) slack recovery and dual accumulation
   below stay gcd-free (docs/linalg.md walks through the sizes). *)
let validate ~n ~lo ~hi ~(rows : P.row array) ~obj (cert : Flp.certificate) =
  let m = Array.length rows in
  let nv = n + m in
  let st = cert.Flp.statuses in
  if Array.length st <> nv then raise (Reject "certificate arity");
  let bound_lo v = if v < n then lo.(v) else rows.(v - n).P.lo in
  let bound_hi v = if v < n then hi.(v) else rows.(v - n).P.hi in
  (* basic user variables = columns of the core *)
  let users = ref [] in
  for v = n - 1 downto 0 do
    match st.(v) with Flp.Basic -> users := v :: !users | _ -> ()
  done;
  let users = Array.of_list !users in
  let u = Array.length users in
  (* binding rows (slack nonbasic) = rows of the core *)
  let binding = ref [] in
  let basic_slacks = ref 0 in
  for k = m - 1 downto 0 do
    match st.(n + k) with
    | Flp.Basic -> incr basic_slacks
    | _ -> binding := k :: !binding
  done;
  let binding = Array.of_list !binding in
  (* basis squareness; #binding = m - #basic slacks = u, so the core is
     square exactly when the full basis is *)
  if !basic_slacks + u <> m then raise (Reject "basis size");
  let ucol = Array.make n (-1) in
  Array.iteri (fun i v -> ucol.(v) <- i) users;
  (* exact values for the nonbasic variables *)
  let clamp v x =
    let x =
      match bound_lo v with Some l when Q.compare x l < 0 -> l | _ -> x
    in
    match bound_hi v with Some h when Q.compare x h > 0 -> h | _ -> x
  in
  let nb_val = Array.make nv Q.zero in
  Array.iteri
    (fun v s ->
      match s with
      | Flp.Basic -> ()
      | Flp.At_lower -> (
        match bound_lo v with
        | Some l -> nb_val.(v) <- l
        | None -> raise (Reject "at-lower without lower bound"))
      | Flp.At_upper -> (
        match bound_hi v with
        | Some h -> nb_val.(v) <- h
        | None -> raise (Reject "at-upper without upper bound"))
      | Flp.Between x ->
        if not (Float.is_finite x) then raise (Reject "between not finite");
        nb_val.(v) <- clamp v (Q.of_float x))
    st;
  (* core system: binding row k over basic user columns = rhs from the
     pinned nonbasic part (including that row's own slack) *)
  let core = Array.make_matrix u u Q.zero in
  let rhs = Array.make u Q.zero in
  Array.iteri
    (fun r k ->
      List.iter
        (fun (j, a) ->
          let c = ucol.(j) in
          if c >= 0 then core.(r).(c) <- Q.add core.(r).(c) a
          else rhs.(r) <- Q.sub rhs.(r) (Q.mul a nb_val.(j)))
        rows.(k).P.terms;
      rhs.(r) <- Q.add rhs.(r) nb_val.(n + k))
    binding;
  let xnum, xden =
    try Linalg.Bareiss.solve_raw core rhs
    with Linalg.Bareiss.Singular -> raise (Reject "singular basis")
  in
  let xu = Array.map (fun nm -> Q.make nm xden) xnum in
  (* primal feasibility: basic users against their boxes *)
  Array.iteri
    (fun i v ->
      let x = xu.(i) in
      (match bound_lo v with
      | Some l when Q.compare x l < 0 -> raise (Reject "primal below lower")
      | _ -> ());
      match bound_hi v with
      | Some h when Q.compare x h > 0 -> raise (Reject "primal above upper")
      | _ -> ())
    users;
  (* primal feasibility: each basic slack is its row's activity; the
     basic-user part accumulates integer numerators over the shared
     Bareiss denominator, one big gcd per row at the final division *)
  let qxden = Q.make xden B.one in
  Array.iteri
    (fun k (r : P.row) ->
      match st.(n + k) with
      | Flp.Basic ->
        let big = ref Q.zero and small = ref Q.zero in
        List.iter
          (fun (j, a) ->
            let c = ucol.(j) in
            if c >= 0 then big := Q.add !big (Q.mul a (Q.make xnum.(c) B.one))
            else small := Q.add !small (Q.mul a nb_val.(j)))
          r.P.terms;
        let s = Q.add (Q.div !big qxden) !small in
        (match r.P.lo with
        | Some l when Q.compare s l < 0 ->
          raise (Reject "primal below lower")
        | _ -> ());
        (match r.P.hi with
        | Some h when Q.compare s h > 0 ->
          raise (Reject "primal above upper")
        | _ -> ())
      | _ -> ())
    rows;
  (* duals: basic-slack rows have multiplier zero, the rest solve the
     transposed core against the basic users' costs *)
  let cost v =
    if v < n then match Imap.find_opt v obj with Some c -> c | None -> Q.zero
    else Q.zero
  in
  let coret = Array.init u (fun i -> Array.init u (fun j -> core.(j).(i))) in
  let ynum, yden =
    try Linalg.Bareiss.solve_raw coret (Array.map cost users)
    with Linalg.Bareiss.Singular -> raise (Reject "singular basis")
  in
  let qyden = Q.make yden B.one in
  let ya_num = Array.make nv Q.zero in
  Array.iteri
    (fun r k ->
      if not (B.is_zero ynum.(r)) then begin
        let yq = Q.make ynum.(r) B.one in
        List.iter
          (fun (j, a) -> ya_num.(j) <- Q.add ya_num.(j) (Q.mul yq a))
          rows.(k).P.terms;
        ya_num.(n + k) <- Q.sub ya_num.(n + k) yq
      end)
    binding;
  Array.iteri
    (fun v s ->
      match s with
      | Flp.Basic -> ()
      | _ ->
        let fixed =
          match (bound_lo v, bound_hi v) with
          | Some l, Some h -> Q.compare l h = 0
          | _ -> false
        in
        if not fixed then begin
          let d = Q.sub (cost v) (Q.div ya_num.(v) qyden) in
          match s with
          | Flp.At_lower ->
            if Q.sign d < 0 then raise (Reject "reduced cost at lower")
          | Flp.At_upper ->
            if Q.sign d > 0 then raise (Reject "reduced cost at upper")
          | Flp.Between _ ->
            if Q.sign d <> 0 then raise (Reject "reduced cost between")
          | Flp.Basic -> ()
        end)
    st;
  Array.init n (fun v ->
      if ucol.(v) >= 0 then xu.(ucol.(v)) else nb_val.(v))

(* ---- exact fallback ---- *)

let linexp_of terms =
  Smt.Linexp.sum (List.map (fun (v, c) -> Smt.Linexp.monomial c v) terms)

let exact_fallback t obj ~constant ~warm_values =
  let lp = Lp.create () in
  List.iter
    (fun (lo, hi) -> ignore (Lp.add_var ?lo ?hi lp))
    (List.rev t.vars);
  (match warm_values with
  | Some vals ->
    Array.iteri
      (fun v x -> if Float.is_finite x then Lp.set_initial lp v (Q.of_float x))
      vals
  | None -> Hashtbl.iter (fun v x -> Lp.set_initial lp v x) t.warm);
  List.iter
    (fun r ->
      let e = linexp_of r.terms in
      match (r.rlo, r.rhi) with
      | Some l, Some h when Q.equal l h -> Lp.add_eq lp e l
      | rlo, rhi ->
        (match rlo with Some l -> Lp.add_ge lp e l | None -> ());
        (match rhi with Some h -> Lp.add_le lp e h | None -> ()))
    (List.rev t.rows);
  match Lp.minimize lp (linexp_of obj) with
  | Lp.Optimal { objective; values } ->
    Optimal { objective = Q.add objective constant; values; certified = false }
  | Lp.Infeasible -> Infeasible
  | Lp.Unbounded -> Unbounded

let solve_exact t obj ~constant =
  exact_fallback t (canon obj) ~constant ~warm_values:None

(* ---- the certified pipeline ---- *)

let report_stats (st : P.stats) =
  Obs.Counter.add c_rows_eliminated st.P.rows_eliminated;
  Obs.Counter.add c_bounds_tightened st.P.bounds_tightened;
  Obs.Counter.add c_vars_fixed st.P.vars_fixed;
  Obs.Histogram.observe_int h_presolve_rows st.P.rows_eliminated

let minimize ?mangle_cert t obj ~constant =
  Obs.Trace.with_span "lp.certify.minimize" @@ fun () ->
  let obj = canon obj in
  let n = t.nvars in
  let vars = Array.of_list (List.rev t.vars) in
  let plo = Array.map fst vars and phi = Array.map snd vars in
  let prows =
    List.rev_map
      (fun r -> { P.terms = r.terms; lo = r.rlo; hi = r.rhi })
      t.rows
  in
  (* exact presolve up front: the float solve then runs on the reduced
     problem, and the certificate is checked against that same exact
     reduction (margin zero, so no float-presolve decision can leak into a
     certified answer) *)
  match P.run ~n_vars:n ~lo:plo ~hi:phi prows with
  | P.Infeasible { stats; _ } ->
    report_stats stats;
    Obs.Counter.incr c_presolve_infeasible;
    Infeasible
  | P.Reduced { lo; hi; rows; fixed = _; stats } ->
    report_stats stats;
    let rows = Array.of_list rows in
    let f = Flp.create ~presolve:false () in
    let fl = function Some q -> Q.to_float q | None -> neg_infinity in
    let fh = function Some q -> Q.to_float q | None -> infinity in
    for v = 0 to n - 1 do
      ignore (Flp.add_var ~lo:(fl lo.(v)) ~hi:(fh hi.(v)) f)
    done;
    Hashtbl.iter (fun v x -> Flp.set_initial f v (Q.to_float x)) t.warm;
    Array.iter
      (fun (r : P.row) ->
        let terms = List.map (fun (v, c) -> (v, Q.to_float c)) r.P.terms in
        Flp.add_range f terms ~lo:(fl r.P.lo) ~hi:(fh r.P.hi))
      rows;
    let fobj = List.map (fun (v, c) -> (v, Q.to_float c)) obj in
    let result, cert = Flp.minimize_cert f fobj ~constant:(Q.to_float constant) in
    let obj_map =
      List.fold_left (fun acc (v, c) -> Imap.add v c acc) Imap.empty obj
    in
    let fallback warm =
      Obs.Counter.incr c_fallback;
      exact_fallback t obj ~constant ~warm_values:warm
    in
    (match (result, cert) with
    | Flp.Optimal { values = fvals; _ }, Some cert -> (
      let cert = match mangle_cert with Some g -> g cert | None -> cert in
      let checked =
        Obs.Histogram.time h_seconds (fun () ->
            try Some (validate ~n ~lo ~hi ~rows ~obj:obj_map cert)
            with Reject _ -> None)
      in
      match checked with
      | Some values ->
        Obs.Counter.incr c_ok;
        let objective =
          List.fold_left
            (fun acc (v, c) -> Q.add acc (Q.mul c values.(v)))
            constant obj
        in
        Optimal { objective; values; certified = true }
      | None ->
        Obs.Counter.incr c_fail;
        fallback (Some fvals))
    | Flp.Optimal { values = fvals; _ }, None -> fallback (Some fvals)
    | Flp.Stall { values = fvals }, _ -> fallback (Some fvals)
    | Flp.Infeasible, _ -> fallback None
    | Flp.Unbounded, _ -> fallback None)
