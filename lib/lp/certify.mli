(** Certified float linear programming — FPTaylor-style "compute in
    floats, prove in rationals".

    The pipeline behind {!minimize}:

    + exact presolve ({!Analysis.Presolve.Exact}, margin zero) on the
      recorded problem — an [Infeasible] verdict here is already sound;
    + float simplex ({!Flp}, presolve off) on the reduced problem, which
      emits a {{!Flp.certificate} basis certificate} at optimality;
    + one exact refactorization of the certified basis over
      {!Linalg.Qmat}: pin nonbasic variables to their claimed bounds,
      solve the square basic system in rationals, check primal bounds and
      reduced-cost signs exactly, and read the exact optimum off the
      basis;
    + on any gap — certificate rejected, float stall/cycle, float
      infeasible or unbounded verdict — transparent fallback to the exact
      {!Lp} simplex, warm-started from the float point.

    Either way the returned optimum is exact; [certified] records which
    path produced it.  Observable as [lp.certify.{ok,fail,fallback}]
    counters and the [lp.certify.seconds] check-time histogram. *)

type t

type outcome =
  | Optimal of {
      objective : Numeric.Rat.t;
      values : Numeric.Rat.t array;  (** indexed by variable id *)
      certified : bool;
          (** [true]: certificate validated exactly; [false]: exact
              fallback produced the result (equally sound, slower) *)
    }
  | Infeasible
  | Unbounded

val create : unit -> t
val add_var : ?lo:Numeric.Rat.t -> ?hi:Numeric.Rat.t -> t -> int

val set_initial : t -> int -> Numeric.Rat.t -> unit
(** Warm start for the float solve (and the exact fallback when no float
    point is available). *)

val add_le : t -> (int * Numeric.Rat.t) list -> Numeric.Rat.t -> unit
val add_ge : t -> (int * Numeric.Rat.t) list -> Numeric.Rat.t -> unit
val add_eq : t -> (int * Numeric.Rat.t) list -> Numeric.Rat.t -> unit

val minimize :
  ?mangle_cert:(Flp.certificate -> Flp.certificate) ->
  t ->
  (int * Numeric.Rat.t) list ->
  constant:Numeric.Rat.t ->
  outcome
(** Certified minimization of [terms . x + constant].  [mangle_cert] is a
    test hook applied to the certificate before the exact check (corrupt
    it and the check must fail into the fallback path). *)

val solve_exact :
  t -> (int * Numeric.Rat.t) list -> constant:Numeric.Rat.t -> outcome
(** The same problem on the exact simplex only — the reference the
    certified path is compared against in tests ([certified] is [false]). *)
