(** Float bounded-variable simplex — same algorithm as {!Lp} but in
    IEEE-754 doubles with epsilon tolerances.

    This is what production OPF engines use.  It exists here for the
    largest test systems, where exact rational minors grow into hundreds of
    digits, and as the numeric baseline the exact solver is compared
    against (ablation ABL-FLOAT-LP).  Results carry a ~1e-7 tolerance and
    no exactness guarantee. *)

type t

type result =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | Unbounded

val create : unit -> t
val add_var : ?lo:float -> ?hi:float -> t -> int

val set_initial : t -> int -> float -> unit
(** Warm start: initial value for a variable (clamped to bounds).  Call
    before adding constraints that mention it. *)

val add_le : t -> (int * float) list -> float -> unit
(** [(var, coeff)] terms; constant right-hand side. *)

val add_ge : t -> (int * float) list -> float -> unit
val add_eq : t -> (int * float) list -> float -> unit
val minimize : t -> (int * float) list -> constant:float -> result
val n_pivots : t -> int
