(** Float bounded-variable simplex — same algorithm as {!Lp} but in
    IEEE-754 doubles with epsilon tolerances.

    This is what production OPF engines use.  It exists here for the
    largest test systems, where exact rational minors grow into hundreds of
    digits, and as the numeric baseline the exact solver is compared
    against (ablation ABL-FLOAT-LP).  Results carry a ~1e-7 tolerance and
    no exactness guarantee.

    Like {!Lp}, constraints are recorded and the tableau is built on the
    [minimize] call behind an optimum-preserving presolve
    ({!Analysis.Presolve.Float}, whose drop/infeasibility decisions keep a
    1e-6 safety margin above this solver's 1e-9 epsilon).  Activity shows
    up in the [lp.presolve.*] and [lp.float.pivots] {!Obs} counters. *)

type t

type result =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | Unbounded

val presolve_default : bool ref
(** Whether newly created solvers presolve (default [true]); [create]'s
    [?presolve] overrides it per instance. *)

val create : ?presolve:bool -> unit -> t
val add_var : ?lo:float -> ?hi:float -> t -> int

val set_initial : t -> int -> float -> unit
(** Warm start: initial value for a variable (clamped to bounds).  Call
    before [minimize]. *)

val add_le : t -> (int * float) list -> float -> unit
(** [(var, coeff)] terms; constant right-hand side. *)

val add_ge : t -> (int * float) list -> float -> unit
val add_eq : t -> (int * float) list -> float -> unit

val minimize : t -> (int * float) list -> constant:float -> result
(** Builds the tableau (one-shot: adding constraints afterwards raises
    [Invalid_argument]) and solves. *)

val n_pivots : t -> int
