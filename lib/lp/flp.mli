(** Float bounded-variable simplex — same algorithm as {!Lp} but in
    IEEE-754 doubles with epsilon tolerances.

    This is what production OPF engines use.  It exists here for the
    largest test systems, where exact rational minors grow into hundreds of
    digits, and as the numeric baseline the exact solver is compared
    against (ablation ABL-FLOAT-LP).  Results carry a ~1e-7 tolerance and
    no exactness guarantee.

    Like {!Lp}, constraints are recorded and the tableau is built on the
    [minimize] call behind an optimum-preserving presolve
    ({!Analysis.Presolve.Float}, whose drop/infeasibility decisions keep a
    1e-6 safety margin above this solver's 1e-9 epsilon).  Activity shows
    up in the [lp.presolve.*] and [lp.float.pivots] {!Obs} counters. *)

type t

type result =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | Unbounded
  | Stall of { values : float array }
      (** Step-limit hit before termination (numeric cycling).  The carried
          point is the solver's last iterate — possibly infeasible, never
          trusted; callers must re-solve exactly (see {!Certify}), at best
          warm-started from [values].  Counted by [lp.float.stall]. *)

(** {2 Basis certificates}

    Where each variable sat when phase II declared optimality: in the
    basis, at a bound, or (for nonbasic variables whose box allows it)
    strictly between bounds.  Indices cover user variables first, then one
    slack per constraint row in insertion order — the layout used when the
    solver is created with [~presolve:false]; under presolve the row set is
    reduced and only {!Certify} (which presolves exactly up front) should
    interpret the slack tail. *)

type var_status = Basic | At_lower | At_upper | Between of float

type certificate = { statuses : var_status array }

val presolve_default : bool ref
(** Whether newly created solvers presolve (default [true]); [create]'s
    [?presolve] overrides it per instance. *)

val create : ?presolve:bool -> unit -> t
val add_var : ?lo:float -> ?hi:float -> t -> int

val set_initial : t -> int -> float -> unit
(** Warm start: initial value for a variable (clamped to bounds).  Call
    before [minimize]. *)

val add_le : t -> (int * float) list -> float -> unit
(** [(var, coeff)] terms; constant right-hand side. *)

val add_ge : t -> (int * float) list -> float -> unit
val add_eq : t -> (int * float) list -> float -> unit

val add_range : t -> (int * float) list -> lo:float -> hi:float -> unit
(** Two-sided row [lo <= terms . x <= hi] ([neg_infinity]/[infinity] for a
    free side) recorded as a single constraint — one slack, which keeps the
    certificate's slack indices aligned with row order (see {!Certify}). *)

val minimize : t -> (int * float) list -> constant:float -> result
(** Builds the tableau (one-shot: adding constraints afterwards raises
    [Invalid_argument]) and solves. *)

val minimize_cert :
  t -> (int * float) list -> constant:float -> result * certificate option
(** Like {!minimize}, additionally returning the basis certificate —
    present exactly when the result is [Optimal]. *)

val n_pivots : t -> int
