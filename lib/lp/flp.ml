(* Float bounded-variable simplex.  Mirrors Lp's structure: deferred
   tableau build behind an optimum-preserving presolve, slack per
   surviving constraint row, phase-I bound repair, phase-II objective
   descent, both under Bland's rule, with epsilon comparisons. *)

module Imap = Map.Make (Int)
module P = Analysis.Presolve.Float

let eps = 1e-9

type result =
  | Optimal of { objective : float; values : float array }
  | Infeasible
  | Unbounded
  | Stall of { values : float array }

type var_status = Basic | At_lower | At_upper | Between of float

type certificate = { statuses : var_status array }

let presolve_default = ref true

(* the lp.presolve.* counters are shared with Lp *)
let c_rows_eliminated = Obs.Counter.make "lp.presolve.rows_eliminated"
let c_bounds_tightened = Obs.Counter.make "lp.presolve.bounds_tightened"
let c_vars_fixed = Obs.Counter.make "lp.presolve.vars_fixed"
let c_presolve_infeasible = Obs.Counter.make "lp.presolve.infeasible"
let c_pivots = Obs.Counter.make "lp.float.pivots"
let c_stall = Obs.Counter.make "lp.float.stall"
let h_pivots = Obs.Histogram.make "lp.float.pivots_per_solve"

(* shared with Lp, like the presolve counters *)
let h_presolve_rows = Obs.Histogram.make "lp.presolve.rows_eliminated_per_solve"

type pending = {
  pterms : (int * float) list;
  plo : float; (* neg_infinity = free below *)
  phi : float; (* infinity = free above *)
}

type t = {
  mutable nvars : int;
  mutable lo : float array; (* neg_infinity = free below *)
  mutable hi : float array; (* infinity = free above *)
  mutable beta : float array;
  mutable rows : float Imap.t Imap.t;
  mutable pending : pending list; (* reversed insertion order *)
  mutable pivots : int;
  mutable user_vars : int;
  presolve : bool;
  mutable built : bool;
}

let create ?presolve () =
  {
    nvars = 0;
    lo = Array.make 16 neg_infinity;
    hi = Array.make 16 infinity;
    beta = Array.make 16 0.0;
    rows = Imap.empty;
    pending = [];
    pivots = 0;
    user_vars = 0;
    presolve = Option.value presolve ~default:!presolve_default;
    built = false;
  }

let n_pivots t = t.pivots

let grow t =
  let cap = Array.length t.beta in
  if t.nvars > cap then begin
    let ncap = max (2 * cap) t.nvars in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.lo <- extend t.lo neg_infinity;
    t.hi <- extend t.hi infinity;
    t.beta <- extend t.beta 0.0
  end

let new_var ?(lo = neg_infinity) ?(hi = infinity) t =
  let v = t.nvars in
  t.nvars <- t.nvars + 1;
  grow t;
  t.lo.(v) <- lo;
  t.hi.(v) <- hi;
  t.beta.(v) <- (if lo > 0.0 then lo else if hi < 0.0 then hi else 0.0);
  v

let add_var ?lo ?hi t =
  if t.built then invalid_arg "Flp.add_var: tableau already built";
  let v = new_var ?lo ?hi t in
  t.user_vars <- t.user_vars + 1;
  v

(* warm start: set a variable's initial value (clamped to its bounds);
   call before minimize *)
let set_initial t v x =
  t.beta.(v) <- Float.min t.hi.(v) (Float.max t.lo.(v) x)

let normalize_terms t terms =
  List.fold_left
    (fun acc (v, c) ->
      let merge w cw acc =
        Imap.update w
          (function
            | None -> if Float.abs cw < eps then None else Some cw
            | Some c0 ->
              let s = c0 +. cw in
              if Float.abs s < eps then None else Some s)
          acc
      in
      match Imap.find_opt v t.rows with
      | None -> merge v c acc
      | Some row -> Imap.fold (fun w cw acc -> merge w (c *. cw) acc) row acc)
    Imap.empty terms

let row_value t row =
  Imap.fold (fun v c acc -> acc +. (c *. t.beta.(v))) row 0.0

let record_constraint t ?(lo = neg_infinity) ?(hi = infinity) terms =
  if t.built then invalid_arg "Flp: constraint added after minimize";
  t.pending <- { pterms = terms; plo = lo; phi = hi } :: t.pending

let add_le t terms b = record_constraint t ~hi:b terms
let add_ge t terms b = record_constraint t ~lo:b terms
let add_eq t terms b = record_constraint t ~lo:b ~hi:b terms
let add_range t terms ~lo ~hi = record_constraint t ~lo ~hi terms

let install_row t terms lo hi =
  let row = normalize_terms t terms in
  let s = new_var t in
  t.lo.(s) <- lo;
  t.hi.(s) <- hi;
  t.rows <- Imap.add s row t.rows;
  t.beta.(s) <- row_value t row

(* fresh unbounded slack for the objective *)
let add_slack t terms =
  let row = normalize_terms t terms in
  let s = new_var t in
  t.rows <- Imap.add s row t.rows;
  t.beta.(s) <- row_value t row;
  s

let report_stats (st : P.stats) =
  Obs.Counter.add c_rows_eliminated st.P.rows_eliminated;
  Obs.Counter.add c_bounds_tightened st.P.bounds_tightened;
  Obs.Counter.add c_vars_fixed st.P.vars_fixed;
  Obs.Histogram.observe_int h_presolve_rows st.P.rows_eliminated

let opt_of_lo l = if l = neg_infinity then None else Some l
let opt_of_hi h = if h = infinity then None else Some h

let build t =
  t.built <- true;
  let pend = List.rev t.pending in
  if not t.presolve then begin
    List.iter (fun p -> install_row t p.pterms p.plo p.phi) pend;
    `Ok
  end
  else begin
    let n = t.user_vars in
    let lo = Array.init n (fun v -> opt_of_lo t.lo.(v)) in
    let hi = Array.init n (fun v -> opt_of_hi t.hi.(v)) in
    let rows =
      List.map
        (fun p ->
          { P.terms = p.pterms; lo = opt_of_lo p.plo; hi = opt_of_hi p.phi })
        pend
    in
    match P.run ~n_vars:n ~lo ~hi rows with
    | P.Infeasible { stats; _ } ->
      report_stats stats;
      Obs.Counter.incr c_presolve_infeasible;
      `Infeasible
    | P.Reduced { lo; hi; rows; fixed; stats } ->
      report_stats stats;
      for v = 0 to n - 1 do
        t.lo.(v) <- (match lo.(v) with Some l -> l | None -> neg_infinity);
        t.hi.(v) <- (match hi.(v) with Some h -> h | None -> infinity)
      done;
      List.iter (fun (v, x) -> t.beta.(v) <- x) fixed;
      (* re-clamp warm starts to the tightened box *)
      for v = 0 to n - 1 do
        t.beta.(v) <- Float.min t.hi.(v) (Float.max t.lo.(v) t.beta.(v))
      done;
      List.iter
        (fun (r : P.row) ->
          install_row t r.P.terms
            (match r.P.lo with Some l -> l | None -> neg_infinity)
            (match r.P.hi with Some h -> h | None -> infinity))
        rows;
      `Ok
  end

let below_lo t x = t.beta.(x) < t.lo.(x) -. eps
let above_hi t x = t.beta.(x) > t.hi.(x) +. eps
let can_increase t x = t.beta.(x) < t.hi.(x) -. eps
let can_decrease t x = t.beta.(x) > t.lo.(x) +. eps

(* Pivoting runs on a mutable dense tableau rather than the persistent
   maps used during construction.  OPF-style LPs have dense columns
   (every generator appears in every flow row), so a map-of-maps pivot
   rewrites nearly every row functionally — allocation and log factors
   on each of millions of entries.  The dense form updates in place.
   Rows are indexed by position; [basis]/[rowof] carry the
   basic-variable correspondence both ways, and every scan that used to
   fold a map in ascending key order iterates variable ids ascending, so
   Bland/Dantzig tie-breaking picks the same pivots. *)
type tab = {
  nv : int;
  basis : int array; (* row index -> basic variable *)
  rowof : int array; (* variable -> row index, -1 when nonbasic *)
  mat : float array array; (* row -> coefficients over every variable *)
}

let tab_of t =
  let nv = t.nvars in
  let m = Imap.cardinal t.rows in
  let basis = Array.make m 0 in
  let rowof = Array.make nv (-1) in
  let mat = Array.make m [||] in
  let r = ref 0 in
  Imap.iter
    (fun b row ->
      let a = Array.make nv 0.0 in
      Imap.iter (fun v c -> a.(v) <- c) row;
      basis.(!r) <- b;
      rowof.(b) <- !r;
      mat.(!r) <- a;
      incr r)
    t.rows;
  { nv; basis; rowof; mat }

let pivot t tb xi xj =
  Obs.Probe.poll ();
  t.pivots <- t.pivots + 1;
  Obs.Counter.incr c_pivots;
  let r = tb.rowof.(xi) in
  let row = tb.mat.(r) in
  let inv_a = 1.0 /. row.(xj) in
  (* the departing variable's row becomes the entering variable's row *)
  for v = 0 to tb.nv - 1 do
    row.(v) <- -.row.(v) *. inv_a
  done;
  row.(xj) <- 0.0;
  row.(xi) <- inv_a;
  for r2 = 0 to Array.length tb.mat - 1 do
    if r2 <> r then begin
      let row2 = tb.mat.(r2) in
      let c = row2.(xj) in
      if c <> 0.0 then begin
        row2.(xj) <- 0.0;
        for v = 0 to tb.nv - 1 do
          let cv = row.(v) in
          if cv <> 0.0 then begin
            let c0 = row2.(v) in
            let s = c0 +. (c *. cv) in
            (* accumulations cancelling below eps are dropped to zero;
               fresh fill is kept however small *)
            row2.(v) <- (if c0 <> 0.0 && Float.abs s < eps then 0.0 else s)
          end
        done
      end
    end
  done;
  tb.basis.(r) <- xj;
  tb.rowof.(xi) <- -1;
  tb.rowof.(xj) <- r

let pivot_and_update t tb xi xj v =
  let a = tb.mat.(tb.rowof.(xi)).(xj) in
  let theta = (v -. t.beta.(xi)) /. a in
  t.beta.(xi) <- v;
  t.beta.(xj) <- t.beta.(xj) +. theta;
  for r = 0 to Array.length tb.mat - 1 do
    let b = tb.basis.(r) in
    if b <> xi then begin
      let c = tb.mat.(r).(xj) in
      if c <> 0.0 then t.beta.(b) <- t.beta.(b) +. (c *. theta)
    end
  done;
  pivot t tb xi xj

(* Phase I.  Entering-variable choice: largest eligible coefficient
   (Dantzig-like) while progress is made, falling back to Bland's
   smallest-index rule after a stall to guarantee termination. *)
let feasibility t tb =
  let steps = ref 0 in
  let bland = ref false in
  let rec loop () =
    incr steps;
    if !steps > 200000 then `Stall
    else begin
      if !steps > 5000 then bland := true;
      let violated = ref (-1) in
      (let v = ref 0 in
       while !violated < 0 && !v < tb.nv do
         if tb.rowof.(!v) >= 0 && (below_lo t !v || above_hi t !v) then
           violated := !v;
         incr v
       done);
      if !violated < 0 then `Feasible
      else begin
        let xi = !violated in
        let row = tb.mat.(tb.rowof.(xi)) in
        let too_low = below_lo t xi in
        let eligible v c =
          if too_low = (c > 0.0) then can_increase t v else can_decrease t v
        in
        let xj = ref (-1) in
        if !bland then begin
          let v = ref 0 in
          while !xj < 0 && !v < tb.nv do
            let c = row.(!v) in
            if c <> 0.0 && eligible !v c then xj := !v;
            incr v
          done
        end
        else begin
          let best = ref 0.0 in
          for v = 0 to tb.nv - 1 do
            let c = row.(v) in
            if c <> 0.0 && Float.abs c > !best && eligible v c then begin
              best := Float.abs c;
              xj := v
            end
          done
        end;
        if !xj < 0 then `Infeasible
        else begin
          let target = if too_low then t.lo.(xi) else t.hi.(xi) in
          pivot_and_update t tb xi !xj target;
          loop ()
        end
      end
    end
  in
  loop ()

let shift_nonbasic t tb xj step =
  if Float.abs step > 0.0 then begin
    for r = 0 to Array.length tb.mat - 1 do
      let c = tb.mat.(r).(xj) in
      if c <> 0.0 then
        t.beta.(tb.basis.(r)) <- t.beta.(tb.basis.(r)) +. (c *. step)
    done;
    t.beta.(xj) <- t.beta.(xj) +. step
  end

let optimize t tb z =
  let steps = ref 0 in
  let bland = ref false in
  let rec loop () =
    incr steps;
    if !steps > 200000 then `Stall
    else begin
      if !steps > 5000 then bland := true;
      let row_z = tb.mat.(tb.rowof.(z)) in
      let exj = ref (-1) in
      let edir = ref 1.0 in
      if !bland then begin
        let v = ref 0 in
        while !exj < 0 && !v < tb.nv do
          let c = row_z.(!v) in
          if Float.abs c >= eps then
            if c < 0.0 && can_increase t !v then begin
              exj := !v;
              edir := 1.0
            end
            else if c > 0.0 && can_decrease t !v then begin
              exj := !v;
              edir := -1.0
            end;
          incr v
        done
      end
      else begin
        (* Dantzig: most-improving reduced cost, first index on ties *)
        let best = ref 0.0 in
        for v = 0 to tb.nv - 1 do
          let c = row_z.(v) in
          if Float.abs c >= eps then
            if c < 0.0 && -.c > !best && can_increase t v then begin
              best := -.c;
              exj := v;
              edir := 1.0
            end
            else if c > 0.0 && c > !best && can_decrease t v then begin
              best := c;
              exj := v;
              edir := -1.0
            end
        done
      end;
      if !exj < 0 then `Optimal
      else begin
        let xj = !exj and dir = !edir in
        let found = ref false in
        let best = ref infinity in
        let who = ref (-1) in
        (* -1 = the entering variable's own bound *)
        (let own =
           if dir > 0.0 then t.hi.(xj) -. t.beta.(xj)
           else t.beta.(xj) -. t.lo.(xj)
         in
         if own < infinity then begin
           found := true;
           best := own
         end);
        for v = 0 to tb.nv - 1 do
          let r = tb.rowof.(v) in
          if r >= 0 && v <> z then begin
            let c = tb.mat.(r).(xj) in
            if c <> 0.0 then begin
              let rate = c *. dir in
              let limit =
                if rate > eps then (t.hi.(v) -. t.beta.(v)) /. rate
                else if rate < -.eps then (t.lo.(v) -. t.beta.(v)) /. rate
                else infinity
              in
              if limit < infinity && ((not !found) || limit < !best) then begin
                found := true;
                best := limit;
                who := v
              end
            end
          end
        done;
        if not !found then `Unbounded
        else if !who < 0 then begin
          shift_nonbasic t tb xj (dir *. !best);
          loop ()
        end
        else begin
          let xi = !who in
          let rate = tb.mat.(tb.rowof.(xi)).(xj) *. dir in
          let blocked = if rate > 0.0 then t.hi.(xi) else t.lo.(xi) in
          pivot_and_update t tb xi xj blocked;
          loop ()
        end
      end
    end
  in
  loop ()

(* Basis certificate: position of every variable except the objective
   slack [z] (which enters basic and never leaves — neither loop ever
   selects it as entering).  Nonbasic variables sitting strictly inside
   their box (free variables, presolve-fixed values) are reported as
   [Between] so the exact check can pin them to the float point. *)
let certificate t tb z =
  let statuses =
    Array.init z (fun v ->
        if tb.rowof.(v) >= 0 then Basic
        else if t.lo.(v) = t.hi.(v) then At_lower
        else if Float.abs (t.beta.(v) -. t.lo.(v)) <= eps then At_lower
        else if Float.abs (t.beta.(v) -. t.hi.(v)) <= eps then At_upper
        else Between t.beta.(v))
  in
  { statuses }

let minimize_cert t obj ~constant =
  let p0 = t.pivots in
  let finish r =
    Obs.Histogram.observe_int h_pivots (t.pivots - p0);
    r
  in
  Obs.Trace.with_span "lp.float.minimize" @@ fun () ->
  finish
    (match build t with
    | `Infeasible -> (Infeasible, None)
    | `Ok -> (
      let z = add_slack t obj in
      let tb = tab_of t in
      let user_values () = Array.init t.user_vars (fun v -> t.beta.(v)) in
      match feasibility t tb with
      | `Infeasible -> (Infeasible, None)
      | `Stall ->
        Obs.Counter.incr c_stall;
        (Stall { values = user_values () }, None)
      | `Feasible -> (
        match optimize t tb z with
        | `Unbounded -> (Unbounded, None)
        | `Stall ->
          Obs.Counter.incr c_stall;
          (Stall { values = user_values () }, None)
        | `Optimal ->
          ( Optimal { objective = t.beta.(z) +. constant; values = user_values () },
            Some (certificate t tb z) ))))

let minimize t obj ~constant = fst (minimize_cert t obj ~constant)
