(* Sparse linear algebra: CSR storage plus a sparse LU factorization with
   Markowitz-style pivot ordering, instantiated over floats ({!F}) and
   exact rationals ({!Q}) — the sparse counterparts of {!Lu} and
   {!Qmat}.

   Power-grid susceptance matrices have a handful of nonzeros per row at
   any system size, so a fill-reducing factorization keeps both the
   factor size and the per-solve cost near-linear in the number of
   buses, where the dense kernels are cubic.  One factorization serves
   [A x = b] and the transposed system [A^T y = c]; the latter is the
   access pattern of on-demand PTDF rows ({!Opf.Factors}) and of the
   dual half of a basis-certificate check ({!Certify}). *)

let c_fill_in = Obs.Counter.make "linalg.lu.fill_in"
let c_factorizations = Obs.Counter.make "linalg.lu.factorizations"

module type ELT = sig
  type t

  val zero : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val is_zero : t -> bool

  val magnitude : t -> float
  (** Pivot admissibility measure.  Exact instances may map every nonzero
      to [1.0]: correctness there needs no magnitude pivoting. *)

  val pivot_threshold : float
  (** Relative threshold within the pivot column: an entry is an
      admissible pivot when [magnitude >= pivot_threshold * column max].
      [0.0] admits any nonzero. *)

  val singular_eps : float
  (** A column whose largest magnitude falls below this is treated as
      structurally zero. *)
end

module type S = sig
  type elt
  type t

  val of_triplets : rows:int -> cols:int -> (int * int * elt) list -> t
  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int
  val get : t -> int -> int -> elt
  val mul_vec : t -> elt array -> elt array
  val transpose : t -> t
  val row : t -> int -> (int * elt) list

  exception Singular

  type lu

  val lu_factor : t -> lu
  val solve : lu -> elt array -> elt array
  val solve_transpose : lu -> elt array -> elt array
  val fill_in : lu -> int
end

module Make (E : ELT) : S with type elt = E.t = struct
  type elt = E.t

  (* CSR: row [i]'s entries sit at [row_ptr.(i) .. row_ptr.(i+1) - 1],
     column indices ascending.  [transpose] of a CSR matrix is the CSC
     view of the original, so one constructor covers both layouts. *)
  type t = {
    m : int;
    n : int;
    row_ptr : int array;
    col_idx : int array;
    vals : elt array;
  }

  let rows a = a.m
  let cols a = a.n
  let nnz a = a.row_ptr.(a.m)

  let of_triplets ~rows:m ~cols:n trips =
    if m < 0 || n < 0 then invalid_arg "Sparse.of_triplets: negative size";
    (* accumulate duplicates per row, then lay out in CSR order *)
    let row_tbl = Array.init m (fun _ -> Hashtbl.create 4) in
    List.iter
      (fun (i, j, v) ->
        if i < 0 || i >= m || j < 0 || j >= n then
          invalid_arg "Sparse.of_triplets: index out of range";
        let tbl = row_tbl.(i) in
        match Hashtbl.find_opt tbl j with
        | Some v0 -> Hashtbl.replace tbl j (E.add v0 v)
        | None -> Hashtbl.replace tbl j v)
      trips;
    let row_entries =
      Array.map
        (fun tbl ->
          Hashtbl.fold (fun j v acc -> if E.is_zero v then acc else (j, v) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b))
        row_tbl
    in
    let total = Array.fold_left (fun acc l -> acc + List.length l) 0 row_entries in
    let row_ptr = Array.make (m + 1) 0 in
    let col_idx = Array.make total 0 in
    let vals = Array.make total E.zero in
    let k = ref 0 in
    Array.iteri
      (fun i entries ->
        row_ptr.(i) <- !k;
        List.iter
          (fun (j, v) ->
            col_idx.(!k) <- j;
            vals.(!k) <- v;
            incr k)
          entries)
      row_entries;
    row_ptr.(m) <- !k;
    { m; n; row_ptr; col_idx; vals }

  let row a i =
    List.init (a.row_ptr.(i + 1) - a.row_ptr.(i)) (fun k ->
        let p = a.row_ptr.(i) + k in
        (a.col_idx.(p), a.vals.(p)))

  let get a i j =
    let res = ref E.zero in
    for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      if a.col_idx.(p) = j then res := a.vals.(p)
    done;
    !res

  let mul_vec a x =
    if Array.length x <> a.n then invalid_arg "Sparse.mul_vec: dimension mismatch";
    Array.init a.m (fun i ->
        let acc = ref E.zero in
        for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
          acc := E.add !acc (E.mul a.vals.(p) x.(a.col_idx.(p)))
        done;
        !acc)

  let transpose a =
    let trips = ref [] in
    for i = 0 to a.m - 1 do
      for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        trips := (a.col_idx.(p), i, a.vals.(p)) :: !trips
      done
    done;
    of_triplets ~rows:a.n ~cols:a.m !trips

  exception Singular

  (* Factored form, everything indexed by elimination step:
     [P A Q = L U] with [prow]/[pcol] mapping step -> original row/column.
     L is unit lower (columns in [lcols], entries (step > k, multiplier)),
     U upper with diagonal [udiag] (rows in [urows], entries
     (step > k, value); [ucols] is the same data column-wise for the
     backward substitution). *)
  type lu = {
    size : int;
    lcols : (int * elt) array array;
    urows : (int * elt) array array;
    ucols : (int * elt) array array;
    udiag : elt array;
    prow : int array;
    pcol : int array;
    fill : int;
  }

  let fill_in f = f.fill

  let lu_factor a =
    if a.m <> a.n then invalid_arg "Sparse.lu_factor: not square";
    let n = a.m in
    (* dynamic form of the active submatrix: per-row column->value
       tables, per-column row sets, and live counts for the Markowitz
       criterion *)
    let row_tbl = Array.init n (fun _ -> Hashtbl.create 8) in
    let col_tbl = Array.init n (fun _ -> Hashtbl.create 8) in
    let row_count = Array.make n 0 in
    let col_count = Array.make n 0 in
    (* no separate row-active array: a row leaves every col_tbl set the
       moment it is chosen as pivot, so the column sets only ever name
       active rows *)
    let col_active = Array.make n true in
    for i = 0 to n - 1 do
      for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        let j = a.col_idx.(p) in
        Hashtbl.replace row_tbl.(i) j a.vals.(p);
        Hashtbl.replace col_tbl.(j) i ();
        row_count.(i) <- row_count.(i) + 1;
        col_count.(j) <- col_count.(j) + 1
      done
    done;
    let nnz0 = nnz a in
    let prow = Array.make n 0 and pcol = Array.make n 0 in
    let lcols = Array.make n [] and urows = Array.make n [] in
    let udiag = Array.make n E.zero in
    let factor_nnz = ref 0 in
    for k = 0 to n - 1 do
      (* one cooperative-interruption check per elimination step, so a
         cancel can land inside a large (or exact-rational) factorization *)
      Obs.Probe.poll ();
      (* Markowitz-style pivot choice: take the sparsest admissible
         column (fewest active entries, i.e. smallest column count),
         then within it the admissible row with the fewest active
         entries — minimizing the (r-1)(c-1) fill bound — breaking ties
         toward larger magnitude for float stability. *)
      let pcol_k = ref (-1) in
      let rejected = ref [] in
      (try
         while true do
           let best = ref (-1) and best_cnt = ref max_int in
           for j = 0 to n - 1 do
             if col_active.(j) && col_count.(j) < !best_cnt then begin
               best := j;
               best_cnt := col_count.(j)
             end
           done;
           if !best < 0 then raise Exit;
           let j = !best in
           let colmax = ref 0.0 in
           Hashtbl.iter
             (fun i () ->
               let v = Hashtbl.find row_tbl.(i) j in
               let m = E.magnitude v in
               if m > !colmax then colmax := m)
             col_tbl.(j);
           if !colmax < E.singular_eps then begin
             (* structurally/numerically empty column: set it aside and
                look at the next sparsest; restored before failing *)
             col_active.(j) <- false;
             rejected := j :: !rejected
           end
           else begin
             pcol_k := j;
             raise Exit
           end
         done
       with Exit -> ());
      List.iter (fun j -> col_active.(j) <- true) !rejected;
      if !pcol_k < 0 then raise Singular;
      let j = !pcol_k in
      let colmax = ref 0.0 in
      Hashtbl.iter
        (fun i () ->
          let m = E.magnitude (Hashtbl.find row_tbl.(i) j) in
          if m > !colmax then colmax := m)
        col_tbl.(j);
      let prow_k = ref (-1) and prow_cnt = ref max_int and prow_mag = ref 0.0 in
      Hashtbl.iter
        (fun i () ->
          let m = E.magnitude (Hashtbl.find row_tbl.(i) j) in
          if m >= E.pivot_threshold *. !colmax && m >= E.singular_eps then
            if
              row_count.(i) < !prow_cnt
              || (row_count.(i) = !prow_cnt
                 && (m > !prow_mag || (m = !prow_mag && i < !prow_k)))
            then begin
              prow_k := i;
              prow_cnt := row_count.(i);
              prow_mag := m
            end)
        col_tbl.(j);
      if !prow_k < 0 then raise Singular;
      let i = !prow_k in
      let piv = Hashtbl.find row_tbl.(i) j in
      prow.(k) <- i;
      pcol.(k) <- j;
      udiag.(k) <- piv;
      (* detach the pivot row; its off-pivot entries become U row k *)
      let urow =
        Hashtbl.fold
          (fun c v acc -> if c = j then acc else (c, v) :: acc)
          row_tbl.(i) []
      in
      Hashtbl.iter
        (fun c _ ->
          Hashtbl.remove col_tbl.(c) i;
          col_count.(c) <- col_count.(c) - 1)
        row_tbl.(i);
      col_active.(j) <- false;
      urows.(k) <- urow;
      factor_nnz := !factor_nnz + List.length urow + 1;
      (* eliminate the pivot column from the remaining rows *)
      let below = Hashtbl.fold (fun s () acc -> s :: acc) col_tbl.(j) [] in
      List.iter
        (fun s ->
          let asj = Hashtbl.find row_tbl.(s) j in
          Hashtbl.remove row_tbl.(s) j;
          row_count.(s) <- row_count.(s) - 1;
          let l = E.div asj piv in
          if not (E.is_zero l) then begin
            lcols.(k) <- (s, l) :: lcols.(k);
            incr factor_nnz;
            List.iter
              (fun (c, v) ->
                let lv = E.mul l v in
                if not (E.is_zero lv) then
                  match Hashtbl.find_opt row_tbl.(s) c with
                  | Some e ->
                    let nv = E.sub e lv in
                    if E.is_zero nv then begin
                      (* exact cancellation: drop the entry *)
                      Hashtbl.remove row_tbl.(s) c;
                      Hashtbl.remove col_tbl.(c) s;
                      row_count.(s) <- row_count.(s) - 1;
                      col_count.(c) <- col_count.(c) - 1
                    end
                    else Hashtbl.replace row_tbl.(s) c nv
                  | None ->
                    (* fill-in *)
                    Hashtbl.replace row_tbl.(s) c (E.sub E.zero lv);
                    Hashtbl.replace col_tbl.(c) s ();
                    row_count.(s) <- row_count.(s) + 1;
                    col_count.(c) <- col_count.(c) + 1)
              urow
          end)
        below;
      Hashtbl.reset col_tbl.(j)
    done;
    (* convert to step indexing *)
    let inv_row = Array.make n 0 and inv_col = Array.make n 0 in
    for k = 0 to n - 1 do
      inv_row.(prow.(k)) <- k;
      inv_col.(pcol.(k)) <- k
    done;
    let by_step = fun (a, _) (b, _) -> compare a b in
    let lcols_s =
      Array.map
        (fun l ->
          List.map (fun (s, v) -> (inv_row.(s), v)) l
          |> List.sort by_step |> Array.of_list)
        lcols
    in
    let urows_s =
      Array.map
        (fun l ->
          List.map (fun (c, v) -> (inv_col.(c), v)) l
          |> List.sort by_step |> Array.of_list)
        urows
    in
    let ucols_acc = Array.make n [] in
    Array.iteri
      (fun k entries ->
        Array.iter (fun (j, v) -> ucols_acc.(j) <- (k, v) :: ucols_acc.(j)) entries)
      urows_s;
    let ucols = Array.map (fun l -> Array.of_list (List.rev l)) ucols_acc in
    let fill = max 0 (!factor_nnz - nnz0) in
    Obs.Counter.incr c_factorizations;
    Obs.Counter.add c_fill_in fill;
    { size = n; lcols = lcols_s; urows = urows_s; ucols; udiag; prow; pcol; fill }

  (* [A x = b] with [P A Q = L U]: forward-substitute [L y = P b]
     (scattering column k of L once [y_k] is known), back-substitute
     [U z = y] via the column view, then [x = Q z]. *)
  let solve f b =
    let n = f.size in
    if Array.length b <> n then invalid_arg "Sparse.solve: dimension mismatch";
    let acc = Array.init n (fun k -> b.(f.prow.(k))) in
    for k = 0 to n - 1 do
      let yk = acc.(k) in
      if not (E.is_zero yk) then
        Array.iter
          (fun (j, l) -> acc.(j) <- E.sub acc.(j) (E.mul l yk))
          f.lcols.(k)
    done;
    for k = n - 1 downto 0 do
      let xk = E.div acc.(k) f.udiag.(k) in
      acc.(k) <- xk;
      if not (E.is_zero xk) then
        Array.iter
          (fun (j, v) -> acc.(j) <- E.sub acc.(j) (E.mul v xk))
          f.ucols.(k)
    done;
    let x = Array.make n E.zero in
    for k = 0 to n - 1 do
      x.(f.pcol.(k)) <- acc.(k)
    done;
    x

  (* [A^T y = c]: with [A = P^T L U Q^T], [A^T = Q U^T L^T P], so solve
     [U^T z = Q^T c] forward (U rows scatter as U^T columns), then
     [L^T g = z] backward (gathering along L's columns), then
     [y = P^T g]. *)
  let solve_transpose f c =
    let n = f.size in
    if Array.length c <> n then
      invalid_arg "Sparse.solve_transpose: dimension mismatch";
    let acc = Array.init n (fun k -> c.(f.pcol.(k))) in
    for k = 0 to n - 1 do
      let zk = E.div acc.(k) f.udiag.(k) in
      acc.(k) <- zk;
      if not (E.is_zero zk) then
        Array.iter
          (fun (j, v) -> acc.(j) <- E.sub acc.(j) (E.mul v zk))
          f.urows.(k)
    done;
    for k = n - 1 downto 0 do
      let s = ref acc.(k) in
      Array.iter
        (fun (j, l) -> s := E.sub !s (E.mul l acc.(j)))
        f.lcols.(k);
      acc.(k) <- !s
    done;
    let y = Array.make n E.zero in
    for k = 0 to n - 1 do
      y.(f.prow.(k)) <- acc.(k)
    done;
    y
end

module F = Make (struct
  type t = float

  let zero = 0.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let is_zero x = x = 0.0
  let magnitude = Float.abs
  let pivot_threshold = 0.1
  let singular_eps = 1e-12
end)

module Q = Make (struct
  module R = Numeric.Rat

  type t = R.t

  let zero = R.zero
  let add = R.add
  let sub = R.sub
  let mul = R.mul
  let div = R.div
  let is_zero = R.is_zero

  (* exact arithmetic: any nonzero pivot is admissible, so magnitude only
     separates zero from nonzero and the ordering is pure Markowitz *)
  let magnitude q = if R.is_zero q then 0.0 else 1.0
  let pivot_threshold = 0.0
  let singular_eps = 0.5
end)
