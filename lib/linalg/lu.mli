(** LU factorisation with partial pivoting, and solvers built on it. *)

exception Singular

type t
(** Factorisation of a square matrix. *)

val decompose : Mat.t -> t
(** @raise Singular when the matrix is (numerically) singular.
    @raise Invalid_argument when not square. *)

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b]. *)

val solve_mat : Mat.t -> Mat.t -> Mat.t
(** Solve [A X = B] column by column. *)

val solve_vec : Mat.t -> Vec.t -> Vec.t
(** One-shot [decompose + solve]. *)

val inverse : Mat.t -> Mat.t
val det : Mat.t -> float
