module Q = Numeric.Rat

exception Singular

type t = { r : int; c : int; data : Q.t array }

let create r c = { r; c; data = Array.make (r * c) Q.zero }

let init r c f =
  { r; c; data = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }

let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j v = m.data.((i * m.c) + j) <- v

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Qmat.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref Q.zero in
      for j = 0 to m.c - 1 do
        acc := Q.add !acc (Q.mul (get m i j) v.(j))
      done;
      !acc)

(* Gaussian elimination with partial (first nonzero) pivoting *)
let solve m b =
  if m.r <> m.c then invalid_arg "Qmat.solve: not square";
  let n = m.r in
  if Array.length b <> n then invalid_arg "Qmat.solve: dimension mismatch";
  let a = init n n (get m) in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* find pivot *)
    let pivot = ref (-1) in
    (try
       for i = k to n - 1 do
         if not (Q.is_zero (get a i k)) then begin
           pivot := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot < 0 then raise Singular;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = get a k j in
        set a k j (get a !pivot j);
        set a !pivot j t
      done;
      let t = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    let pkk = get a k k in
    for i = k + 1 to n - 1 do
      let f = Q.div (get a i k) pkk in
      if not (Q.is_zero f) then begin
        set a i k Q.zero;
        for j = k + 1 to n - 1 do
          set a i j (Q.sub (get a i j) (Q.mul f (get a k j)))
        done;
        x.(i) <- Q.sub x.(i) (Q.mul f x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Q.sub !acc (Q.mul (get a i j) x.(j))
    done;
    x.(i) <- Q.div !acc (get a i i)
  done;
  x
