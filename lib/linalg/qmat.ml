module Q = Numeric.Rat

exception Singular

type t = { r : int; c : int; data : Q.t array }

let create r c = { r; c; data = Array.make (r * c) Q.zero }

let init r c f =
  { r; c; data = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }

let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j v = m.data.((i * m.c) + j) <- v

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Qmat.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref Q.zero in
      for j = 0 to m.c - 1 do
        acc := Q.add !acc (Q.mul (get m i j) v.(j))
      done;
      !acc)

(* ---- exact LU factorization ----

   PA = LU with L unit-lower (strict part stored below the diagonal of
   [f]) and U upper including the diagonal; [perm] maps factor row ->
   source row.  One factorization serves both [A x = b] and the
   transposed system [A^T y = c] — the access pattern of a basis
   certificate check, which runs a primal and a dual solve against the
   same basis matrix. *)

type lu = { n : int; f : t; perm : int array }

let lu_factor m =
  if m.r <> m.c then invalid_arg "Qmat.lu_factor: not square";
  let n = m.r in
  let f = init n n (get m) in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* first nonzero pivot: exact arithmetic needs no magnitude pivoting *)
    let pivot = ref (-1) in
    (try
       for i = k to n - 1 do
         if not (Q.is_zero (get f i k)) then begin
           pivot := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pivot < 0 then raise Singular;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = get f k j in
        set f k j (get f !pivot j);
        set f !pivot j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- t
    end;
    let pkk = get f k k in
    for i = k + 1 to n - 1 do
      let l = Q.div (get f i k) pkk in
      set f i k l;
      if not (Q.is_zero l) then
        for j = k + 1 to n - 1 do
          set f i j (Q.sub (get f i j) (Q.mul l (get f k j)))
        done
    done
  done;
  { n; f; perm }

let lu_solve lu b =
  if Array.length b <> lu.n then invalid_arg "Qmat.lu_solve: dimension mismatch";
  let n = lu.n in
  let y = Array.make n Q.zero in
  for i = 0 to n - 1 do
    let acc = ref b.(lu.perm.(i)) in
    for j = 0 to i - 1 do
      acc := Q.sub !acc (Q.mul (get lu.f i j) y.(j))
    done;
    y.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := Q.sub !acc (Q.mul (get lu.f i j) y.(j))
    done;
    y.(i) <- Q.div !acc (get lu.f i i)
  done;
  y

(* [A^T y = c] with [PA = LU]: [A^T = U^T L^T P], so solve [U^T w = c]
   (forward, dividing by the diagonal), then [L^T v = w] (backward, unit
   diagonal), then [P y = v], i.e. [y.(perm.(i)) = v.(i)]. *)
let lu_solve_transpose lu c =
  if Array.length c <> lu.n then
    invalid_arg "Qmat.lu_solve_transpose: dimension mismatch";
  let n = lu.n in
  let w = Array.make n Q.zero in
  for i = 0 to n - 1 do
    let acc = ref c.(i) in
    for j = 0 to i - 1 do
      acc := Q.sub !acc (Q.mul (get lu.f j i) w.(j))
    done;
    w.(i) <- Q.div !acc (get lu.f i i)
  done;
  for i = n - 1 downto 0 do
    let acc = ref w.(i) in
    for j = i + 1 to n - 1 do
      acc := Q.sub !acc (Q.mul (get lu.f j i) w.(j))
    done;
    w.(i) <- !acc
  done;
  let y = Array.make n Q.zero in
  for i = 0 to n - 1 do
    y.(lu.perm.(i)) <- w.(i)
  done;
  y

let solve m b =
  if m.r <> m.c then invalid_arg "Qmat.solve: not square";
  if Array.length b <> m.r then invalid_arg "Qmat.solve: dimension mismatch";
  lu_solve (lu_factor m) b
