(** Dense float vectors. *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val copy : t -> t
val dim : t -> int
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean (l2) norm — the measurement-residual norm of paper §II-B. *)

val norm_inf : t -> float
val max_abs_index : t -> int
val pp : Format.formatter -> t -> unit
