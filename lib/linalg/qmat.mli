(** Dense matrices over exact rationals with Gaussian elimination.

    Used for the base-case DC power flow feeding the SMT attack model: the
    stealth equalities (paper Eqs. 13/14) relate attack deltas to true line
    flows, so those flows must be exact rationals, not floats. *)

exception Singular

type t

val create : int -> int -> t
val init : int -> int -> (int -> int -> Numeric.Rat.t) -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Numeric.Rat.t
val set : t -> int -> int -> Numeric.Rat.t -> unit

val solve : t -> Numeric.Rat.t array -> Numeric.Rat.t array
(** Solve [A x = b] exactly; @raise Singular on singular systems. *)

val mul_vec : t -> Numeric.Rat.t array -> Numeric.Rat.t array

(** {2 Exact LU}

    One factorization answers both [A x = b] and [A{^T} y = c] — the
    shape of a basis-certificate check, which needs a primal and a dual
    solve against the same basis matrix. *)

type lu

val lu_factor : t -> lu
(** Exact [PA = LU] with first-nonzero pivoting; @raise Singular.
    @raise Invalid_argument on non-square input. *)

val lu_solve : lu -> Numeric.Rat.t array -> Numeric.Rat.t array
(** Solve [A x = b] from the factorization. *)

val lu_solve_transpose : lu -> Numeric.Rat.t array -> Numeric.Rat.t array
(** Solve [A{^T} y = c] from the same factorization. *)
