(* Fraction-free exact solve of a dense rational system.

   The exact LP certificate check reduces its basis to a small dense core
   (one row per binding constraint, one column per basic structural
   variable).  Eliminating that core in rational arithmetic is dominated
   by gcd normalization: every intermediate entry is a ratio of minors,
   and keeping it in lowest terms means gcds of numbers that grow with
   every step.  Bareiss's one-step condensation sidesteps the problem by
   clearing denominators up front and keeping every intermediate an
   *integer* minor of the scaled matrix: the update
       a'(i,j) = (p * a(i,j) - a(i,k) * a(k,j)) / p_prev
   divides exactly (Sylvester's identity), so the whole elimination is
   big-integer multiply/subtract/exact-divide with no gcd at all.  Entry
   bit-sizes grow linearly in the step count (Hadamard), not
   exponentially as in division-free schoolbook elimination.

   Back substitution stays fraction-free too: with det the last pivot of
   the triangularized system, Cramer's rule makes det * x_i an integer,
   and  num_i = (b_i * det - sum_{j>i} a(i,j) * num_j) / a(i,i)  is again
   an exact division.  {!solve_raw} exposes the numerators together with
   the common denominator so callers can keep downstream accumulations
   over one shared denominator instead of re-reducing per entry. *)

module B = Numeric.Bigint
module Q = Numeric.Rat

exception Singular

let obs_solves = Obs.Counter.make "linalg.bareiss.solves"

let lcm a b =
  if B.equal a B.one then b
  else if B.equal b B.one then a
  else B.mul (B.div a (B.gcd a b)) b

let solve_raw (m : Q.t array array) (rhs : Q.t array) =
  let n = Array.length m in
  if Array.length rhs <> n then invalid_arg "Bareiss.solve_raw: rhs length";
  Obs.Counter.incr obs_solves;
  if n = 0 then ([||], B.one)
  else begin
    (* clear matrix denominators row by row (row scaling leaves the
       solution unchanged); the rhs picks up the same row factors and is
       then put over one common denominator [dd] *)
    let a = Array.make_matrix n n B.zero in
    let bq = Array.make n Q.zero in
    for i = 0 to n - 1 do
      if Array.length m.(i) <> n then invalid_arg "Bareiss.solve_raw: ragged";
      let d =
        Array.fold_left (fun acc (x : Q.t) -> lcm acc x.Q.den) B.one m.(i)
      in
      for j = 0 to n - 1 do
        let x = m.(i).(j) in
        if not (Q.is_zero x) then a.(i).(j) <- B.mul x.Q.num (B.div d x.Q.den)
      done;
      bq.(i) <- Q.mul rhs.(i) (Q.make d B.one)
    done;
    let dd =
      Array.fold_left (fun acc (x : Q.t) -> lcm acc x.Q.den) B.one bq
    in
    let b =
      Array.map (fun (x : Q.t) -> B.mul x.Q.num (B.div dd x.Q.den)) bq
    in
    (* one-step condensation; row swaps only permute equations *)
    let prev = ref B.one in
    for k = 0 to n - 1 do
      (* big-integer elimination steps are a slow unit of work at
         thousand-bus core sizes; keep cancellation responsive *)
      Obs.Probe.poll ();
      let piv = ref (-1) in
      for i = k to n - 1 do
        if
          (not (B.is_zero a.(i).(k)))
          && (!piv < 0 || B.bit_length a.(i).(k) < B.bit_length a.(!piv).(k))
        then piv := i
      done;
      if !piv < 0 then raise Singular;
      if !piv <> k then begin
        let t = a.(k) in
        a.(k) <- a.(!piv);
        a.(!piv) <- t;
        let t = b.(k) in
        b.(k) <- b.(!piv);
        b.(!piv) <- t
      end;
      let p = a.(k).(k) in
      for i = k + 1 to n - 1 do
        let aik = a.(i).(k) in
        for j = k + 1 to n - 1 do
          a.(i).(j) <-
            B.div (B.sub (B.mul p a.(i).(j)) (B.mul aik a.(k).(j))) !prev
        done;
        b.(i) <- B.div (B.sub (B.mul p b.(i)) (B.mul aik b.(k))) !prev;
        a.(i).(k) <- B.zero
      done;
      prev := p
    done;
    (* det x_i is an integer; peel it off bottom-up with exact divisions *)
    let det = a.(n - 1).(n - 1) in
    let num = Array.make n B.zero in
    for i = n - 1 downto 0 do
      let s = ref (B.mul b.(i) det) in
      for j = i + 1 to n - 1 do
        s := B.sub !s (B.mul a.(i).(j) num.(j))
      done;
      num.(i) <- B.div !s a.(i).(i)
    done;
    (num, B.mul det dd)
  end

let solve m rhs =
  let num, den = solve_raw m rhs in
  Array.map (fun n -> Q.make n den) num

let solve_transpose m rhs =
  let n = Array.length m in
  let mt = Array.init n (fun i -> Array.init n (fun j -> m.(j).(i))) in
  solve mt rhs
