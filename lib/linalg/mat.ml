type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
      a;
    init rows cols (fun i j -> a.(i).(j))
  end

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (get m i))
let copy m = { m with data = Array.copy m.data }
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set r i j (get r i j +. (aik *. get b k j))
        done
    done
  done;
  r

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }
let row m i = Array.init m.cols (get m i)
let col m j = Array.init m.rows (fun i -> get m i j)

let drop_col m j0 =
  init m.rows (m.cols - 1) (fun i j -> if j < j0 then get m i j else get m i (j + 1))

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "|";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt " %8.4f" (get m i j)
    done;
    Format.fprintf fmt " |@."
  done
