(** Sparse linear algebra: CSR/CSC storage and a sparse LU factorization
    with Markowitz-style (fill-reducing) pivot ordering.

    Two instances mirror the dense {!Lu}/{!Qmat} split: {!F} over floats
    (threshold partial pivoting within the sparsest column) and {!Q}
    over exact rationals (any nonzero pivot, pure Markowitz ordering).
    Both report fill-in to the [linalg.lu.fill_in] observability counter
    — see [docs/linalg.md] for the layout, the ordering heuristic, and
    when sparse beats dense. *)

module type ELT = sig
  type t

  val zero : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val is_zero : t -> bool

  val magnitude : t -> float
  (** Pivot admissibility measure; exact instances may map every nonzero
      to [1.0]. *)

  val pivot_threshold : float
  (** Entry admissible as pivot when
      [magnitude >= pivot_threshold * column max]; [0.0] admits any
      nonzero. *)

  val singular_eps : float
  (** Columns whose largest magnitude falls below this are treated as
      structurally zero. *)
end

module type S = sig
  type elt
  type t

  val of_triplets : rows:int -> cols:int -> (int * int * elt) list -> t
  (** Build a CSR matrix from (row, col, value) triplets; duplicates are
      summed, exact zeros dropped. *)

  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int

  val get : t -> int -> int -> elt
  (** Linear scan of the row: meant for tests and spot reads, not inner
      loops. *)

  val mul_vec : t -> elt array -> elt array

  val transpose : t -> t
  (** The CSR form of the transpose — equivalently the CSC view of the
      original matrix. *)

  val row : t -> int -> (int * elt) list
  (** Entries of one row as (column, value) pairs, columns ascending. *)

  exception Singular

  type lu

  val lu_factor : t -> lu
  (** [P A Q = L U] with Markowitz-style pivoting: at each step take the
      sparsest admissible column, and within it the admissible row with
      the fewest active entries (minimizing the [(r-1)(c-1)] fill
      bound), ties broken toward larger magnitude.
      @raise Singular when no admissible pivot remains. *)

  val solve : lu -> elt array -> elt array
  (** [solve f b] returns [x] with [A x = b]. *)

  val solve_transpose : lu -> elt array -> elt array
  (** [solve_transpose f c] returns [y] with [A^T y = c] from the same
      factorization — the access pattern of on-demand PTDF rows and of
      dual solves in certificate checking. *)

  val fill_in : lu -> int
  (** [nnz (L + U) - nnz A], never negative: the price of this
      factorization's ordering. *)
end

module Make (E : ELT) : S with type elt = E.t

module F : S with type elt = float
(** Float instance: relative pivot threshold 0.1 within the chosen
    column, columns below 1e-12 treated as zero. *)

module Q : S with type elt = Numeric.Rat.t
(** Exact rational instance: any nonzero pivot is admissible, so the
    ordering is pure Markowitz and results are exact. *)
