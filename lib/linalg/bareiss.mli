(** Fraction-free (Bareiss) exact solve of a dense rational system.

    Complements {!Sparse.Q} at the opposite end of the structure
    spectrum: the sparse LU wins when the matrix has exploitable
    sparsity, while a dense core of ratio-of-minors entries drowns it in
    gcd normalization.  Bareiss condensation keeps every intermediate an
    integer minor — multiply, subtract, exact divide, no gcds — so dense
    exact solves scale to the basis cores of thousand-bus certificates
    (see docs/linalg.md). *)

exception Singular

val solve :
  Numeric.Rat.t array array -> Numeric.Rat.t array -> Numeric.Rat.t array
(** [solve m rhs] returns the exact [x] with [m x = rhs] for a square
    [m].  Inputs are not mutated.
    @raise Singular when [m] is rank-deficient.
    @raise Invalid_argument on non-square or mismatched inputs. *)

val solve_raw :
  Numeric.Rat.t array array ->
  Numeric.Rat.t array ->
  Numeric.Bigint.t array * Numeric.Bigint.t
(** [solve_raw m rhs] is [solve] in unreduced form: [(num, den)] with
    [x_i = num_i / den] (den may be negative, entries need not be in
    lowest terms).  Callers accumulating many downstream products keep
    them over the one shared denominator instead of paying a gcd per
    entry. *)

val solve_transpose :
  Numeric.Rat.t array array -> Numeric.Rat.t array -> Numeric.Rat.t array
(** [solve_transpose m rhs] solves [m^T x = rhs]. *)
