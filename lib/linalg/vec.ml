type t = float array

let make = Array.make
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: dimension mismatch"

let add a b =
  check_same_dim a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_same_dim a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale k a = Array.map (fun x -> k *. x) a

let dot a b =
  check_same_dim a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 a

let max_abs_index a =
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if Float.abs a.(i) > Float.abs a.(!best) then best := i
  done;
  !best

let pp fmt a =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i x -> Format.fprintf fmt "%s%g" (if i > 0 then "; " else "") x)
    a;
  Format.fprintf fmt "]"
