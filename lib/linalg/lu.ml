exception Singular

(* Doolittle LU with partial pivoting stored in place; [perm] maps factor
   row -> original row, [parity] tracks the permutation sign for [det]. *)
type t = { lu : Mat.t; perm : int array; parity : float }

let epsilon = 1e-12

let decompose a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.decompose: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let parity = ref 1.0 in
  for k = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot k) then pivot := i
    done;
    if Float.abs (Mat.get lu !pivot k) < epsilon then raise Singular;
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot j);
        Mat.set lu !pivot j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- t;
      parity := -. !parity
    end;
    let pkk = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let f = Mat.get lu i k /. pkk in
      Mat.set lu i k f;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (f *. Mat.get lu k j))
      done
    done
  done;
  { lu; perm; parity = !parity }

let solve f b =
  let n = Mat.rows f.lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(f.perm.(i)) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get f.lu i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get f.lu i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.get f.lu i i
  done;
  y

let solve_vec a b = solve (decompose a) b

let solve_mat a b =
  let f = decompose a in
  let n = Mat.rows b and m = Mat.cols b in
  ignore n;
  let out = Mat.create (Mat.rows a) m in
  for j = 0 to m - 1 do
    let x = solve f (Mat.col b j) in
    Array.iteri (fun i v -> Mat.set out i j v) x
  done;
  out

let inverse a = solve_mat a (Mat.identity (Mat.rows a))

let det a =
  match decompose a with
  | exception Singular -> 0.0
  | f ->
    let n = Mat.rows a in
    let d = ref f.parity in
    for i = 0 to n - 1 do
      d := !d *. Mat.get f.lu i i
    done;
    !d
