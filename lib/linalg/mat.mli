(** Dense row-major float matrices. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t

val drop_col : t -> int -> t
(** Remove one column — used to eliminate the slack-bus column of H/A. *)

val pp : Format.formatter -> t -> unit
