(** Fleet lifecycle: fork/exec N shard servers (the same binary's
    [serve] subcommand on loopback TCP ports [base_port] ...
    [base_port + shards - 1]), wait until every shard accepts, run the
    {!Coordinator} in this process until it drains, then reap the
    children (SIGTERM after [30 s] for a shard that ignores its drain).

    Shard names are ["shard-0"] ... ["shard-N-1"]; the ring hashes
    names, so a shard restarted under its old name and port keeps
    exactly its old arcs — the invariant the journal warm-start relies
    on. *)

type config = {
  exe : string;  (** the topoguard binary ([Sys.executable_name]) *)
  listen : Serve.Transport.endpoint;  (** the coordinator's endpoint *)
  shards : int;
  host : string;
  base_port : int;
  jobs_per_shard : int;  (** worker domains per shard *)
  cache_mb : int;  (** store budget per shard (MiB) *)
  journal_dir : string option;
      (** when set, shard [i] journals to [dir/shard-i.journal], so a
          bounced shard replays its own results on restart *)
  vnodes : int;
  verbose : bool;
  access_log : string option;
      (** when set, the coordinator appends its routed-request log (with
          shard names) to this file and shard [i] to [FILE.shard-i] *)
  trace : string option;
      (** when set, the coordinator writes its Chrome trace to this file
          on drain and shard [i] to [FILE.shard-i] — the file set
          [tools/trace_merge.ml] stitches into one cross-process trace *)
}

val default_config :
  exe:string -> listen:Serve.Transport.endpoint -> config
(** 3 shards on 127.0.0.1:7601..., 1 job and 64 MiB each, no journals,
    default vnodes, quiet. *)

val shard_name : int -> string
val shard_endpoint : config -> int -> Serve.Transport.endpoint

val run : config -> (unit, string) result
(** Blocks until the fleet drains ([shutdown] verb or SIGTERM; exit is
    clean even if a shard was killed externally mid-run).  [Error] =
    startup failure: a shard that never accepted, or the coordinator
    endpoint in use — any children already running are terminated. *)
