(** Consistent-hash ring with virtual nodes: the fleet's placement
    function.  Each shard contributes [vnodes] points (hashes of
    ["name#i"] through {!Store.Canonical.point}, the same function that
    places keys); a key belongs to the shard of the first point at or
    clockwise after the key's point, wrapping at the top.

    Placement is deterministic across processes — any two rings built
    from the same shard names agree — and incremental: adding or
    removing one shard of N moves only ~1/N of the keyspace, so a
    rebalance does not cold-start every shard's cache.  Rings are
    immutable; {!add}/{!remove} return new rings, and {!moved} diffs
    ownership across two rings to report actual key movement. *)

type t

val default_vnodes : int
(** 256 — a shard's keyspace share spreads like [1/sqrt vnodes], and
    256 keeps small fleets (3–8 shards) within a few percent of fair. *)

val create : ?vnodes:int -> string list -> t
(** Build a ring over distinct shard names (duplicates are dropped,
    order is irrelevant: two builders always agree). *)

val add : t -> string -> t
val remove : t -> string -> t
val mem : t -> string -> bool

val shards : t -> string list
(** Sorted, distinct. *)

val vnodes : t -> int

val owner : t -> string -> string option
(** The shard owning this key ([None] only on an empty ring). *)

val owner_point : t -> int -> string option
(** Ownership of a precomputed {!Store.Canonical.point}. *)

val ranges : t -> string -> (int * int) list
(** The inclusive [(lo, hi)] point arcs this shard owns, ascending —
    what a restarted shard passes to the [sync] verb to pull exactly
    its keys from peers.  The arc crossing the top of the ring splits
    in two. *)

val moved : before:t -> after:t -> string list -> int
(** How many of [keys] changed owner between two rings. *)
