(* Consistent-hash ring with virtual nodes.

   Every shard contributes [vnodes] points on a ring of
   [Store.Canonical.point] values (62-bit non-negative ints); a key is
   owned by the shard of the first point at or clockwise after the
   key's own point, wrapping at the top.  With enough virtual nodes the
   arcs even out (the test suite bounds the imbalance), and adding or
   removing one shard moves only the keys on the arcs it gains or
   loses — roughly 1/N of the keyspace — which is the whole reason to
   prefer a ring over [hash mod N]: shard affinity is cache affinity,
   and a rebalance should not cold-start every shard's store.

   The structure is immutable (adds and removes return a new ring), so
   the coordinator can diff ownership between the old and new ring to
   report how many live keys actually moved. *)

type t = {
  vnodes : int;
  points : (int * string) array;  (* ascending by point *)
  shards : string list;  (* sorted, distinct *)
}

(* a shard's share of the keyspace is a sum of [vnodes] arc lengths, so
   its relative spread shrinks like 1/sqrt(vnodes): 64 left one shard of
   four owning 39% of the keys in practice, 256 keeps every shard within
   a few percent of fair and key movement on grow/shrink near 1/N *)
let default_vnodes = 256

(* the vnode points of one shard: hash "name#i"; any stable scheme
   works, but every process of a fleet must use the same one, which is
   why this goes through Store.Canonical.point like key placement *)
let shard_points ~vnodes name =
  List.init vnodes (fun i ->
      (Store.Canonical.point (Printf.sprintf "%s#%d" name i), name))

let build ~vnodes shards =
  let shards = List.sort_uniq String.compare shards in
  let pts = List.concat_map (shard_points ~vnodes) shards in
  (* ties broken by shard name so every builder agrees on the winner *)
  let pts =
    List.sort
      (fun (p1, s1) (p2, s2) ->
        match compare p1 p2 with 0 -> String.compare s1 s2 | c -> c)
      pts
  in
  let rec dedup = function
    | (p1, _) :: ((p2, _) :: _ as rest) when p1 = p2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  { vnodes; points = Array.of_list (dedup pts); shards }

let create ?(vnodes = default_vnodes) shards = build ~vnodes shards
let shards t = t.shards
let vnodes t = t.vnodes
let mem t name = List.mem name t.shards

let add t name =
  if mem t name then t else build ~vnodes:t.vnodes (name :: t.shards)

let remove t name =
  if not (mem t name) then t
  else build ~vnodes:t.vnodes (List.filter (( <> ) name) t.shards)

(* first vnode at or after [p], wrapping to points.(0) *)
let owner_point t p =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) < p then lo := mid + 1 else hi := mid
    done;
    Some (snd t.points.(if !lo = n then 0 else !lo))
  end

let owner t key = owner_point t (Store.Canonical.point key)

(* the inclusive arcs [name] owns: each of its vnodes at point p owns
   (prev_point + 1, p), where prev is the next point counterclockwise;
   the arc through the top of the ring splits into two ranges *)
let ranges t name =
  let n = Array.length t.points in
  if n = 0 then []
  else if n = 1 then if snd t.points.(0) = name then [ (0, max_int) ] else []
  else begin
    let acc = ref [] in
    for i = 0 to n - 1 do
      let p, s = t.points.(i) in
      if s = name then begin
        let prev = fst t.points.(if i = 0 then n - 1 else i - 1) in
        if prev < p then acc := (prev + 1, p) :: !acc
        else begin
          (* wrap arc: (prev, top] and [0, p] *)
          if prev < max_int then acc := (prev + 1, max_int) :: !acc;
          acc := (0, p) :: !acc
        end
      end
    done;
    List.sort compare !acc
  end

let moved ~before ~after keys =
  List.fold_left
    (fun n key -> if owner before key <> owner after key then n + 1 else n)
    0 keys
