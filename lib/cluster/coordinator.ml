module J = Obs.Json
module P = Serve.Protocol

(* The fleet's front door: one process that speaks the same
   line-delimited JSON protocol as a shard, owns no store and no
   solver, and only decides *where* each request runs.

   Placement is the consistent-hash ring over the same canonical job
   keys the shards cache under, so a scenario always lands on the shard
   whose LRU/journal already holds it — shard affinity is cache
   affinity.  Job ids are rewritten at the boundary: clients hold
   coordinator ids, the coordinator retains each job's payload and
   placement, and shard-local ids never escape.  That retention is also
   the failover story: when a shard dies mid-conversation, the
   coordinator drops it from the ring (counting how many tracked keys
   changed owner) and transparently resubmits the retained payload to
   the new owner on the next status/result touch. *)

type config = {
  listen : Serve.Transport.endpoint;
  shards : (string * Serve.Transport.endpoint) list;
  vnodes : int;
  verbose : bool;
  max_line : int;
  access_log : string option;
  trace : string option;
}

let default_config ~listen ~shards =
  {
    listen;
    shards;
    vnodes = Ring.default_vnodes;
    verbose = false;
    max_line = P.Frame.default_max_line;
    access_log = None;
    trace = None;
  }

let c_requests = Obs.Counter.make "cluster.requests"
let c_batch_submitted = Obs.Counter.make "cluster.batch.submitted"
let c_batch_failed = Obs.Counter.make "cluster.batch.failed"
let c_keys_moved = Obs.Counter.make "cluster.ring.keys_moved"
let c_rebalances = Obs.Counter.make "cluster.ring.rebalances"
let h_route = Obs.Histogram.make "cluster.route.seconds"
let h_request = Obs.Histogram.make "cluster.request.seconds"

(* a routed job: enough to answer id-addressed verbs and to resubmit
   after a shard death *)
type job = {
  payload : P.submit;
  point : int option;  (* None when the grid did not parse *)
  mutable shard : string;
  mutable remote_id : int;
}

type t = {
  cfg : config;
  mutable ring : Ring.t;
  shards : (string, Shard.t) Hashtbl.t;
  jobs : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable next_rid : int;
  draining : bool Atomic.t;
  access_log : out_channel option;
  mutable fwd_trace : (string * string) option;
      (* the trace context forwarded to shard calls of the request being
         handled: the incoming trace id with the coordinator's own span
         id as the new parent (single event-loop domain, so a plain
         mutable field is race-free) *)
  mutable last_shard : string option;
      (* the shard the current request was routed to, for the access log *)
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "[fleet] %s\n%!" s)
    fmt

let now () = Obs.Clock.now ()

(* one JSON object per request, like the shard server's access log, plus
   the shard the request was routed to *)
let log_access t fields =
  match t.access_log with
  | None -> ()
  | Some oc ->
    output_string oc (J.to_string (J.Obj (("ts", J.Float (now ())) :: fields)));
    output_char oc '\n';
    flush oc

let ok_fields fields = J.Obj (("ok", J.Bool true) :: fields)

let err ?retry_after msg =
  J.Obj
    ([ ("ok", J.Bool false); ("error", J.String msg) ]
    @
    match retry_after with
    | Some s -> [ ("retry_after", J.Float s) ]
    | None -> [])

(* ---- placement ---- *)

let point_of_submit s =
  match Grid.Spec.parse s.P.grid with
  | Ok spec -> Some (Store.Canonical.point (P.job_key spec s))
  | Error _ -> None (* the owning shard will report the parse error *)

let owner_name t point =
  match point with
  | Some p -> Ring.owner_point t.ring p
  | None -> ( match Ring.shards t.ring with [] -> None | s :: _ -> Some s)

(* drop a failed shard from the ring, counting how many of the
   currently tracked job keys changed owner — the rebalance metric the
   fleet smoke asserts on *)
let shard_down t sh =
  let name = Shard.name sh in
  Shard.mark_dead sh;
  if Ring.mem t.ring name then begin
    let before = t.ring in
    t.ring <- Ring.remove t.ring name;
    Obs.Counter.incr c_rebalances;
    let moved =
      Hashtbl.fold
        (fun _ job n ->
          match job.point with
          | Some p when Ring.owner_point before p <> Ring.owner_point t.ring p
            ->
            n + 1
          | _ -> n)
        t.jobs 0
    in
    Obs.Counter.add c_keys_moved moved;
    log t "shard %s dropped from ring (%d tracked key(s) moved, %d left)"
      name moved
      (List.length (Ring.shards t.ring))
  end

(* route one request to the owner of [point], failing over (and
   shrinking the ring) until a shard answers or none are left *)
let rec route_rpc t point req =
  match owner_name t point with
  | None -> Error "no live shards"
  | Some name -> (
    match Hashtbl.find_opt t.shards name with
    | None -> Error (Printf.sprintf "unknown shard %s" name)
    | Some sh -> (
      match Shard.request ?trace:t.fwd_trace sh req with
      | Ok resp ->
        t.last_shard <- Some name;
        Ok (name, resp)
      | Error e ->
        log t "shard %s failed: %s" name e;
        shard_down t sh;
        route_rpc t point req))

(* ---- verbs ---- *)

let rewrite_id resp id =
  match resp with
  | J.Obj fields ->
    J.Obj
      (List.map (fun (k, v) -> if k = "id" then (k, J.Int id) else (k, v)) fields)
  | other -> other

(* a successful submit response names a shard-local id; retain the
   mapping and hand the client a coordinator id instead *)
let register t ~point ~payload ~shard resp =
  match (J.member "ok" resp, J.member "id" resp) with
  | Some (J.Bool true), Some (J.Int remote_id) ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.jobs id { payload; point; shard; remote_id };
    rewrite_id resp id
  | _ -> resp (* parse error, queue_full, ... pass through untouched *)

let handle_submit t s =
  Obs.Histogram.time h_route @@ fun () ->
  let point = point_of_submit s in
  match route_rpc t point (P.Submit s) with
  | Error e -> err e
  | Ok (shard, resp) -> register t ~point ~payload:s ~shard resp

(* fan a batch out one sub-batch per owning shard, gather, and
   reassemble the per-item responses in submission order.  A shard that
   dies mid-batch has its items re-grouped under the shrunk ring and
   redispatched, so a batch only loses items when no shards remain. *)
let handle_batch t items =
  Obs.Counter.add c_batch_submitted (List.length items);
  let slots = Array.make (List.length items) (err "unrouted") in
  let rec dispatch pending =
    if pending <> [] then begin
      match Ring.shards t.ring with
      | [] ->
        List.iter
          (fun (i, _, _) -> slots.(i) <- err "no live shards")
          pending
      | ring_shards ->
        let groups = Hashtbl.create (List.length ring_shards) in
        List.iter
          (fun ((_, _, point) as item) ->
            match owner_name t point with
            | Some name ->
              Hashtbl.replace groups name
                (item
                :: (match Hashtbl.find_opt groups name with
                   | Some l -> l
                   | None -> []))
            | None -> ())
          pending;
        List.iter
          (fun name ->
            match Hashtbl.find_opt groups name with
            | None -> ()
            | Some rev_group -> (
              let group = List.rev rev_group in
              let sh = Hashtbl.find t.shards name in
              match
                Shard.request ?trace:t.fwd_trace sh
                  (P.Submit_batch (List.map (fun (_, s, _) -> s) group))
              with
              | Error e ->
                log t "batch to shard %s failed: %s" name e;
                shard_down t sh;
                dispatch group
              | Ok resp -> (
                match (J.member "ok" resp, J.member "results" resp) with
                | Some (J.Bool true), Some (J.List results)
                  when List.length results = List.length group ->
                  List.iter2
                    (fun (i, s, point) item_resp ->
                      slots.(i) <-
                        register t ~point ~payload:s ~shard:name item_resp)
                    group results
                | _ ->
                  (* a draining shard rejects the whole batch: treat it
                     like a death and re-place its items *)
                  log t "batch to shard %s rejected; re-routing" name;
                  shard_down t sh;
                  dispatch group)))
          ring_shards
    end
  in
  dispatch (List.mapi (fun i s -> (i, s, point_of_submit s)) items);
  let results = Array.to_list slots in
  let failed =
    List.fold_left
      (fun n r ->
        match J.member "ok" r with Some (J.Bool true) -> n | _ -> n + 1)
      0 results
  in
  Obs.Counter.add c_batch_failed failed;
  ok_fields [ ("results", J.List results) ]

(* id-addressed verbs (status/result/cancel): forward to the job's
   shard, translating ids both ways.  A dead shard triggers transparent
   resubmission of the retained payload to the current owner — the job
   restarts (losing any progress) but the client's polling loop never
   sees the seam. *)
let forward_job t id make_req =
  match Hashtbl.find_opt t.jobs id with
  | None -> err (Printf.sprintf "unknown job %d" id)
  | Some job ->
    let rec forward () =
      match Hashtbl.find_opt t.shards job.shard with
      | Some sh when Shard.alive sh && Ring.mem t.ring job.shard -> (
        match Shard.request ?trace:t.fwd_trace sh (make_req job.remote_id) with
        | Ok resp ->
          t.last_shard <- Some job.shard;
          rewrite_id resp id
        | Error e ->
          log t "shard %s failed: %s" job.shard e;
          shard_down t sh;
          reroute ())
      | _ -> reroute ()
    and reroute () =
      log t "job %d: shard %s is gone, resubmitting" id job.shard;
      match route_rpc t job.point (P.Submit job.payload) with
      | Error e -> err e
      | Ok (name, resp) -> (
        match (J.member "ok" resp, J.member "id" resp) with
        | Some (J.Bool true), Some (J.Int remote_id) ->
          job.shard <- name;
          job.remote_id <- remote_id;
          forward ()
        | _ -> rewrite_id resp id)
    in
    forward ()

let handle_stats t =
  let shard_stats =
    List.map
      (fun (name, _) ->
        let sh = Hashtbl.find t.shards name in
        let stats =
          if not (Shard.alive sh) then err "shard is dead"
          else
            match Shard.request sh P.Stats with
            | Ok resp -> resp
            | Error e -> err e
        in
        (name, stats))
      t.cfg.shards
  in
  ok_fields
    [
      ( "ring",
        J.Obj
          [
            ( "shards",
              J.List (List.map (fun s -> J.String s) (Ring.shards t.ring)) );
            ("vnodes", J.Int (Ring.vnodes t.ring));
          ] );
      ("shards", J.Obj shard_stats);
      ("snapshot", Obs.json_of_snapshot (Obs.snapshot ()));
    ]

(* aggregate scrape: every live shard's exposition relabeled under
   shard="name" (comment lines dropped — the same # TYPE would repeat
   per shard), then the coordinator's own registry (cluster.* series)
   unlabeled *)
let handle_metrics t =
  let buf = Buffer.create 8192 in
  List.iter
    (fun (name, _) ->
      let sh = Hashtbl.find t.shards name in
      if Shard.alive sh then
        match Shard.request sh P.Metrics with
        | Ok resp -> (
          match J.member "metrics" resp with
          | Some (J.String text) ->
            let labeled = Obs.Prometheus.add_label ~name:"shard" ~value:name text in
            List.iter
              (fun line ->
                if line <> "" && line.[0] <> '#' then begin
                  Buffer.add_string buf line;
                  Buffer.add_char buf '\n'
                end)
              (String.split_on_char '\n' labeled)
          | _ -> ())
        | Error e -> log t "metrics from shard %s failed: %s" name e)
    t.cfg.shards;
  Buffer.add_string buf (Obs.to_prometheus ~namespace:"topoguard" (Obs.snapshot ()));
  ok_fields [ ("metrics", J.String (Buffer.contents buf)) ]

let handle_shutdown t =
  Hashtbl.iter
    (fun _ sh -> if Shard.alive sh then ignore (Shard.request sh P.Shutdown))
    t.shards;
  Atomic.set t.draining true;
  ok_fields [ ("draining", J.Bool true) ]

let handle_request t (req : P.request) =
  Obs.Counter.incr c_requests;
  match req with
  | P.Submit s ->
    if Atomic.get t.draining then err "draining" else handle_submit t s
  | P.Submit_batch items ->
    if Atomic.get t.draining then err "draining" else handle_batch t items
  | P.Status id -> forward_job t id (fun rid -> P.Status rid)
  | P.Result id -> forward_job t id (fun rid -> P.Result rid)
  | P.Cancel id -> forward_job t id (fun rid -> P.Cancel rid)
  | P.Sync _ -> err "the coordinator holds no store; sync a shard directly"
  | P.Stats -> handle_stats t
  | P.Metrics -> handle_metrics t
  | P.Shutdown -> handle_shutdown t

let handle_line t line =
  let t0 = now () in
  t.last_shard <- None;
  t.fwd_trace <- None;
  let rid, verb, ctx, resp =
    match J.of_string line with
    | Error e -> (None, "invalid", None, err ("bad json: " ^ e))
    | Ok j -> (
      let rid = P.request_id_of_json j in
      let verb =
        match J.member "op" j with Some (J.String s) -> s | _ -> "invalid"
      in
      (* a request without a trace context is minted one at the front
         door (when tracing is on), so a whole fleet run correlates even
         for v0 clients; either way the forwarded context carries the
         coordinator's own span id as the new parent *)
      let ctx =
        match P.trace_of_json j with
        | Some _ as c -> c
        | None ->
          if Obs.Trace.enabled () then Some (Obs.Trace.new_trace_id (), "")
          else None
      in
      t.fwd_trace <-
        Option.map (fun (id, _) -> (id, Obs.Trace.new_span_id ())) ctx;
      match P.request_of_json j with
      | Error e -> (rid, verb, ctx, err e)
      | Ok req ->
        ( rid,
          verb,
          ctx,
          Obs.Trace.with_context ctx (fun () -> handle_request t req) ))
  in
  let rid =
    match rid with
    | Some r -> r
    | None ->
      let r = Printf.sprintf "c%d" t.next_rid in
      t.next_rid <- t.next_rid + 1;
      r
  in
  let resp =
    match resp with
    | J.Obj fields ->
      J.Obj
        (fields @ [ ("request_id", J.String rid); ("v", J.Int P.version) ])
    | other -> other
  in
  let latency = now () -. t0 in
  Obs.Histogram.observe h_request latency;
  Obs.Trace.with_context ctx (fun () ->
      Obs.Trace.complete
        ~args:
          ([ ("verb", verb); ("request_id", rid) ]
          @ (match t.last_shard with
            | Some s -> [ ("shard", s) ]
            | None -> [])
          @
          match t.fwd_trace with
          | Some (_, span) -> [ ("span", span) ]
          | None -> [])
        ~ts:t0 ~dur:latency "cluster.request");
  let outcome =
    match resp with
    | J.Obj fields -> (
      match List.assoc_opt "ok" fields with
      | Some (J.Bool true) -> "ok"
      | _ -> "error")
    | _ -> "error"
  in
  log_access t
    ([
       ("kind", J.String "request");
       ("request_id", J.String rid);
       ("verb", J.String verb);
       ("outcome", J.String outcome);
     ]
    @ (match t.last_shard with
      | Some s -> [ ("shard", J.String s) ]
      | None -> [])
    @ (match ctx with
      | Some (trace_id, _) -> [ ("trace", J.String trace_id) ]
      | None -> [])
    @ [ ("latency_s", J.Float latency) ]);
  resp

(* ---- event loop (same shape as the shard server's, minus jobs) ---- *)

exception Closed

type conn = { fd : Unix.file_descr; mutable carry : string }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go ofs =
    if ofs < n then
      match Unix.single_write fd b ofs (n - ofs) with
      | w -> go (ofs + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Unix.select [] [ fd ] [] 1.0);
        go ofs
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed
  in
  go 0

let run (cfg : config) =
  Obs.Clock.set Unix.gettimeofday;
  Obs.set_enabled true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let names = List.map fst cfg.shards in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "duplicate shard names"
  else if names = [] then Error "a fleet needs at least one shard"
  else
    match Serve.Transport.listen cfg.listen with
    | Error e -> Error e
    | Ok listener -> (
      Unix.set_nonblock listener;
      let access_log =
        match cfg.access_log with
        | None -> Ok None
        | Some path -> (
          match open_out_gen [ Open_append; Open_creat ] 0o644 path with
          | oc -> Ok (Some oc)
          | exception Sys_error e -> Error ("access log: " ^ e))
      in
      match access_log with
      | Error e ->
        (* refuse to route blind, like the shard server *)
        (try Unix.close listener with Unix.Unix_error _ -> ());
        Serve.Transport.cleanup cfg.listen;
        Error e
      | Ok access_log ->
      if cfg.trace <> None then begin
        Obs.Trace.set_pid (Unix.getpid ());
        Obs.Trace.set_enabled true
      end;
      let shards = Hashtbl.create (List.length cfg.shards) in
      List.iter
        (fun (name, ep) -> Hashtbl.replace shards name (Shard.make ~name ep))
        cfg.shards;
      let t =
        {
          cfg;
          ring = Ring.create ~vnodes:cfg.vnodes names;
          shards;
          jobs = Hashtbl.create 256;
          next_id = 1;
          next_rid = 1;
          draining = Atomic.make false;
          access_log;
          fwd_trace = None;
          last_shard = None;
        }
      in
      let prev_term =
        Sys.signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> Atomic.set t.draining true))
      in
      log t "coordinator on %s routing to %d shard(s)"
        (Serve.Transport.endpoint_to_string cfg.listen)
        (List.length names);
      let conns = ref [] in
      let close_conn c =
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        conns := List.filter (fun c' -> c' != c) !conns
      in
      let feed conn chunk =
        (* oversized lines (complete or accumulating) close the
           connection, as in the shard server *)
        let oversized conn =
          write_all conn.fd
            (J.to_string
               (err (Printf.sprintf "line exceeds %d bytes" cfg.max_line))
            ^ "\n");
          raise Closed
        in
        let data = conn.carry ^ chunk in
        let lines = String.split_on_char '\n' data in
        let rec go = function
          | [] -> conn.carry <- ""
          | [ last ] ->
            if String.length last > cfg.max_line then oversized conn
            else conn.carry <- last
          | line :: rest ->
            if String.length line > cfg.max_line then oversized conn;
            (if String.trim line <> "" then
               let resp = handle_line t line in
               write_all conn.fd (J.to_string resp ^ "\n"));
            go rest
        in
        go lines
      in
      let read_conn conn =
        let buf = Bytes.create 65536 in
        match Unix.read conn.fd buf 0 (Bytes.length buf) with
        | 0 -> close_conn conn
        | n -> (
          match feed conn (Bytes.sub_string buf 0 n) with
          | () -> ()
          | exception Closed -> close_conn conn)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          close_conn conn
      in
      while not (Atomic.get t.draining) do
        let read_fds = listener :: List.map (fun c -> c.fd) !conns in
        let readable, _, _ =
          match Unix.select read_fds [] [] 0.05 with
          | r -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem listener readable then begin
          let continue = ref true in
          while !continue do
            match Unix.accept listener with
            | fd, _ ->
              Unix.set_nonblock fd;
              conns := { fd; carry = "" } :: !conns
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              continue := false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done
        end;
        List.iter
          (fun conn -> if List.mem conn.fd readable then read_conn conn)
          !conns
      done;
      (* drain: make sure every shard got the word (a SIGTERM sets the
         flag without passing through handle_shutdown), then tear down *)
      Hashtbl.iter
        (fun _ sh ->
          if Shard.alive sh then ignore (Shard.request sh P.Shutdown);
          Shard.close sh)
        t.shards;
      log t "draining: %d job(s) routed" (t.next_id - 1);
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !conns;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      Serve.Transport.cleanup cfg.listen;
      (match cfg.trace with
      | Some path ->
        Obs.Trace.set_enabled false;
        Obs.Trace.write_file path;
        log t "trace written to %s" path
      | None -> ());
      (match t.access_log with Some oc -> close_out oc | None -> ());
      Sys.set_signal Sys.sigterm prev_term;
      Ok ())
