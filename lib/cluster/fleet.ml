(* Fleet lifecycle: fork/exec N shard servers (the same binary's
   [serve] subcommand, each listening on loopback TCP), wait until
   every shard accepts, run the {!Coordinator} in this process, and
   reap the children after the drain.

   Shard names are ["shard-0"] ... ["shard-N-1"]: the ring hashes
   names, so a shard restarted under its old name (and port) keeps
   exactly its old arcs — which is what makes the journal warm-start
   land the right keys. *)

type config = {
  exe : string;  (* the topoguard binary, e.g. Sys.executable_name *)
  listen : Serve.Transport.endpoint;
  shards : int;
  host : string;
  base_port : int;  (* shard i listens on tcp:host:(base_port + i) *)
  jobs_per_shard : int;
  cache_mb : int;
  journal_dir : string option;  (* per-shard journals live here *)
  vnodes : int;
  verbose : bool;
  access_log : string option;  (* coordinator log; shard i appends .shard-i *)
  trace : string option;  (* coordinator trace; shard i appends .shard-i *)
}

let default_config ~exe ~listen =
  {
    exe;
    listen;
    shards = 3;
    host = "127.0.0.1";
    base_port = 7601;
    jobs_per_shard = 1;
    cache_mb = 64;
    journal_dir = None;
    vnodes = Ring.default_vnodes;
    verbose = false;
    access_log = None;
    trace = None;
  }

let shard_name i = Printf.sprintf "shard-%d" i

let shard_endpoint cfg i = Serve.Transport.Tcp (cfg.host, cfg.base_port + i)

let journal_path cfg i =
  Option.map
    (fun dir -> Filename.concat dir (shard_name i ^ ".journal"))
    cfg.journal_dir

(* per-shard derivative of a coordinator-level file: --trace t.json
   gives the coordinator t.json and shard i t.json.shard-i, which is
   exactly the file set tools/trace_merge.ml stitches back together *)
let shard_file path i = path ^ "." ^ shard_name i
let trace_path cfg i = Option.map (fun p -> shard_file p i) cfg.trace
let access_log_path cfg i = Option.map (fun p -> shard_file p i) cfg.access_log

let shard_argv cfg i =
  let ep = Serve.Transport.endpoint_to_string (shard_endpoint cfg i) in
  let opt flag = function Some v -> [ flag; v ] | None -> [] in
  [ cfg.exe; "serve"; "--listen"; ep ]
  @ [ "--jobs"; string_of_int cfg.jobs_per_shard ]
  @ [ "--cache-mb"; string_of_int cfg.cache_mb ]
  @ opt "--journal" (journal_path cfg i)
  @ opt "--trace" (trace_path cfg i)
  @ opt "--access-log" (access_log_path cfg i)
  @ if cfg.verbose then [ "--verbose" ] else []

let spawn_shard cfg i =
  let argv = Array.of_list (shard_argv cfg i) in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cfg.exe argv devnull Unix.stdout Unix.stderr
  in
  Unix.close devnull;
  pid

(* a shard is ready when its port accepts; give a cold process a few
   seconds of connect-retry before declaring the fleet dead *)
let wait_ready ?(timeout = 15.) endpoint =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec loop () =
    match Serve.Transport.dial endpoint with
    | Ok fd ->
      Unix.close fd;
      Ok ()
    | Error e ->
      if Unix.gettimeofday () > deadline then
        Error
          (Printf.sprintf "shard at %s never came up: %s"
             (Serve.Transport.endpoint_to_string endpoint)
             e)
      else begin
        Unix.sleepf 0.05;
        loop ()
      end
  in
  loop ()

let reap ?(timeout = 30.) pids =
  let deadline = Unix.gettimeofday () +. timeout in
  List.iter
    (fun pid ->
      let rec wait_soft () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
          if Unix.gettimeofday () > deadline then begin
            (* a shard that ignores its drain gets a signal *)
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid)
          end
          else begin
            Unix.sleepf 0.05;
            wait_soft ()
          end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_soft ()
      in
      wait_soft ())
    pids

let run cfg =
  if cfg.shards < 1 then Error "a fleet needs at least one shard"
  else begin
    let idx = List.init cfg.shards (fun i -> i) in
    let pids = List.map (fun i -> spawn_shard cfg i) idx in
    let ready =
      List.fold_left
        (fun acc i ->
          match acc with
          | Error _ as e -> e
          | Ok () -> wait_ready (shard_endpoint cfg i))
        (Ok ()) idx
    in
    match ready with
    | Error e ->
      (* startup failed: kill whatever did come up *)
      List.iter
        (fun pid ->
          try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
        pids;
      reap ~timeout:5. pids;
      Error e
    | Ok () ->
      let coord =
        {
          Coordinator.listen = cfg.listen;
          shards = List.map (fun i -> (shard_name i, shard_endpoint cfg i)) idx;
          vnodes = cfg.vnodes;
          verbose = cfg.verbose;
          max_line = Serve.Protocol.Frame.default_max_line;
          access_log = cfg.access_log;
          trace = cfg.trace;
        }
      in
      let result = Coordinator.run coord in
      reap pids;
      result
  end
