(* Open-loop load generation against a scenario service or fleet.

   Open-loop means arrivals are scheduled on a fixed clock — arrival k
   fires at [t0 + k/rate] no matter how the previous ones fared — so a
   slow server faces a growing backlog instead of the generator
   politely slowing down with it (the closed-loop mistake that hides
   queueing collapse).  N client domains share the schedule through one
   atomic arrival counter; each owns its own connection, draws its
   scenario from a warm/cold mix, submits (honouring [retry_after]
   rejections), and awaits the answer.  A detached sampler domain
   scrapes the [metrics] verb for queue depth over time, and the report
   is the [Obs.diff] window of the run plus per-shard balance from a
   final [stats] call. *)

module J = Obs.Json
module P = Serve.Protocol

type config = {
  endpoint : Serve.Transport.endpoint;
  rate : float;  (* target arrivals per second *)
  duration : float;  (* seconds of offered load *)
  clients : int;  (* concurrent client domains *)
  warm_pct : int;  (* share of arrivals drawn from the warm set, 0..100 *)
  warm : P.submit list;  (* repeated scenarios (cache-hit path) *)
  cold : P.submit list;  (* distinct scenarios (solver path) *)
  sample_every : float;  (* metrics scrape period; <= 0 disables *)
  await_timeout : float;  (* per-answer deadline, seconds *)
  trace : bool;  (* mint a fresh trace context per submission *)
}

let default_config ~endpoint ~warm ~cold =
  {
    endpoint;
    rate = 20.;
    duration = 5.;
    clients = 4;
    warm_pct = 80;
    warm;
    cold;
    sample_every = 0.25;
    await_timeout = 60.;
    trace = true;
  }

(* the loadgen series land in the ordinary registry, so the run report
   is just the Obs.diff window over them (plus the client backoff
   histogram the awaits feed) *)
let h_submit = Obs.Histogram.make "loadgen.submit.seconds"
let h_e2e = Obs.Histogram.make "loadgen.e2e.seconds"
let h_sample = Obs.Histogram.make "loadgen.sample.seconds"
let c_offered = Obs.Counter.make "loadgen.offered"
let c_accepted = Obs.Counter.make "loadgen.accepted"
let c_completed = Obs.Counter.make "loadgen.completed"
let c_cached = Obs.Counter.make "loadgen.cached"
let c_failed = Obs.Counter.make "loadgen.failed"
let c_errors = Obs.Counter.make "loadgen.errors"
let c_retries = Obs.Counter.make "loadgen.retries"
let c_lost = Obs.Counter.make "loadgen.lost"

type sample = { at : float; depth : int }

type report = {
  offered : int;
  accepted : int;
  completed : int;
  cached : int;
  failed : int;  (* terminal but not done: failed/timeout/cancelled *)
  errors : int;  (* transport failures and non-retryable rejections *)
  retries : int;  (* retry_after rounds honoured *)
  lost : int;  (* accepted but no terminal answer within the deadline *)
  wall : float;
  achieved_rate : float;  (* accepted submissions per wall second *)
  latency : (string * Obs.hist_entry) list;
      (* the window's loadgen.*.seconds and client.await.backoff.seconds *)
  samples : sample list;  (* queue depth over time, oldest first *)
  per_shard : (string * int) list;  (* jobs submitted per shard *)
  window : Obs.snapshot;  (* the full Obs.diff over the run *)
}

(* ---- scenario mix ---- *)

(* deterministic warm/cold interleaving: arrival k is warm iff its
   low-discrepancy residue falls under warm_pct, so any window of the
   schedule carries the configured mix *)
let pick cfg k =
  let warm_turn =
    cfg.warm <> [] && (cfg.cold = [] || (k * 61) mod 100 < cfg.warm_pct)
  in
  if warm_turn then List.nth cfg.warm (k mod List.length cfg.warm)
  else List.nth cfg.cold (k mod List.length cfg.cold)

(* ---- metrics scraping ---- *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* total queue depth in one Prometheus exposition: the plain gauge of a
   single server, or the sum of the per-shard relabeled gauges of a
   coordinator scrape *)
let queue_depth_of_metrics text =
  List.fold_left
    (fun acc line ->
      if starts_with "topoguard_queue_depth" line then
        match String.rindex_opt line ' ' with
        | Some sp -> (
          let v = String.sub line (sp + 1) (String.length line - sp - 1) in
          match float_of_string_opt v with
          | Some f -> acc + int_of_float f
          | None -> acc)
        | None -> acc
      else acc)
    0
    (String.split_on_char '\n' text)

(* per-shard submitted-jobs balance from a stats response: the
   coordinator's per-shard sections when present, the server's own jobs
   object otherwise *)
let per_shard_of_stats resp =
  let submitted st =
    match J.member "jobs" st with
    | Some jobs -> (
      match J.member "submitted" jobs with Some (J.Int n) -> Some n | _ -> None)
    | None -> None
  in
  match J.member "shards" resp with
  | Some (J.Obj shards) ->
    List.filter_map
      (fun (name, st) -> Option.map (fun n -> (name, n)) (submitted st))
      shards
  | _ -> (
    match submitted resp with Some n -> [ ("self", n) ] | None -> [])

(* ---- the drive loop ---- *)

let retry_after_of resp =
  match J.member "retry_after" resp with
  | Some (J.Float s) when s > 0. -> Some s
  | Some (J.Int s) when s > 0 -> Some (float_of_int s)
  | _ -> None

(* submit, honouring queue-full rejections until [deadline] *)
let rec submit_once conn s ~trace ~deadline =
  let t0 = Unix.gettimeofday () in
  match Serve.Client.submit ?trace conn s with
  | Error e -> `Transport e
  | Ok resp -> (
    Obs.Histogram.observe h_submit (Unix.gettimeofday () -. t0);
    match J.member "ok" resp with
    | Some (J.Bool true) -> `Accepted resp
    | _ -> (
      match retry_after_of resp with
      | Some after when Unix.gettimeofday () +. after <= deadline ->
        Obs.Counter.incr c_retries;
        Unix.sleepf after;
        submit_once conn s ~trace ~deadline
      | _ -> `Rejected))

let worker cfg ~t0 ~total ~next =
  match Serve.Client.connect_endpoint cfg.endpoint with
  | Error _ ->
    (* every arrival this worker would have driven still counts against
       the offered load; without a connection they are all errors *)
    let rec drain () =
      if Atomic.fetch_and_add next 1 < total then begin
        Obs.Counter.incr c_offered;
        Obs.Counter.incr c_errors;
        drain ()
      end
    in
    drain ()
  | Ok conn ->
    let conn = ref conn in
    let rec loop () =
      let k = Atomic.fetch_and_add next 1 in
      if k < total then begin
        let target = t0 +. (float_of_int k /. cfg.rate) in
        let now = Unix.gettimeofday () in
        if target > now then Unix.sleepf (target -. now);
        Obs.Counter.incr c_offered;
        let s = pick cfg k in
        let trace =
          if cfg.trace then
            Some (Obs.Trace.new_trace_id (), Obs.Trace.new_span_id ())
          else None
        in
        let started = Unix.gettimeofday () in
        (match
           submit_once !conn s ~trace ~deadline:(started +. cfg.await_timeout)
         with
        | `Transport _ -> (
          Obs.Counter.incr c_errors;
          (* one reconnect — a restarted server costs one arrival, a
             dead one fails the rest fast instead of hanging the run *)
          match Serve.Client.connect_endpoint cfg.endpoint with
          | Ok c ->
            Serve.Client.close !conn;
            conn := c
          | Error _ -> ())
        | `Rejected -> Obs.Counter.incr c_errors
        | `Accepted resp -> (
          Obs.Counter.incr c_accepted;
          let cached =
            match J.member "cached" resp with
            | Some (J.Bool true) -> true
            | _ -> false
          in
          if cached then begin
            Obs.Counter.incr c_cached;
            Obs.Counter.incr c_completed;
            Obs.Histogram.observe h_e2e (Unix.gettimeofday () -. started)
          end
          else
            match J.member "id" resp with
            | Some (J.Int id) -> (
              match
                Serve.Client.await !conn ~id ~timeout:cfg.await_timeout ()
              with
              | Ok ("done", _) ->
                Obs.Counter.incr c_completed;
                Obs.Histogram.observe h_e2e (Unix.gettimeofday () -. started)
              | Ok (_terminal, _) -> Obs.Counter.incr c_failed
              | Error _ ->
                (* the server accepted the job but the answer never
                   came — the one count a load gate must hold at zero *)
                Obs.Counter.incr c_lost)
            | _ -> Obs.Counter.incr c_errors));
        loop ()
      end
    in
    loop ();
    Serve.Client.close !conn

let sampler cfg ~t0 ~stop =
  if cfg.sample_every <= 0. then []
  else
    match Serve.Client.connect_endpoint cfg.endpoint with
    | Error _ -> []
    | Ok c ->
      let acc = ref [] in
      while not (Atomic.get stop) do
        let s0 = Unix.gettimeofday () in
        (match Serve.Client.request c P.Metrics with
        | Ok resp -> (
          Obs.Histogram.observe h_sample (Unix.gettimeofday () -. s0);
          match J.member "metrics" resp with
          | Some (J.String text) ->
            acc :=
              { at = s0 -. t0; depth = queue_depth_of_metrics text } :: !acc
          | _ -> ())
        | Error _ -> ());
        (* sleep in short slices so the stop flag is honoured promptly *)
        let until = Unix.gettimeofday () +. cfg.sample_every in
        while (not (Atomic.get stop)) && Unix.gettimeofday () < until do
          Unix.sleepf 0.02
        done
      done;
      Serve.Client.close c;
      List.rev !acc

let counter_of snap name =
  Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)

let run cfg =
  if cfg.rate <= 0. then Error "rate must be positive"
  else if cfg.duration <= 0. then Error "duration must be positive"
  else if cfg.clients < 1 then Error "at least one client"
  else if cfg.warm = [] && cfg.cold = [] then Error "no scenarios to submit"
  else begin
    Obs.Clock.set Unix.gettimeofday;
    Obs.set_enabled true;
    let total = max 1 (int_of_float ((cfg.rate *. cfg.duration) +. 0.5)) in
    let before = Obs.snapshot () in
    let t0 = Unix.gettimeofday () in
    let next = Atomic.make 0 in
    let stop = Atomic.make false in
    let sampler_fut = Pool.detached (fun () -> sampler cfg ~t0 ~stop) in
    Pool.with_pool ~jobs:cfg.clients (fun pool ->
        let futs =
          List.init cfg.clients (fun _ ->
              Pool.async pool (fun () -> worker cfg ~t0 ~total ~next))
        in
        List.iter Pool.Future.await futs);
    let wall = Unix.gettimeofday () -. t0 in
    Atomic.set stop true;
    let samples = Pool.Future.await sampler_fut in
    let per_shard =
      match Serve.Client.connect_endpoint cfg.endpoint with
      | Error _ -> []
      | Ok c ->
        let r =
          match Serve.Client.request c P.Stats with
          | Ok resp -> per_shard_of_stats resp
          | Error _ -> []
        in
        Serve.Client.close c;
        r
    in
    let window = Obs.diff ~before ~after:(Obs.snapshot ()) in
    let accepted = counter_of window "loadgen.accepted" in
    Ok
      {
        offered = counter_of window "loadgen.offered";
        accepted;
        completed = counter_of window "loadgen.completed";
        cached = counter_of window "loadgen.cached";
        failed = counter_of window "loadgen.failed";
        errors = counter_of window "loadgen.errors";
        retries = counter_of window "loadgen.retries";
        lost = counter_of window "loadgen.lost";
        wall;
        achieved_rate =
          (if wall > 0. then float_of_int accepted /. wall else 0.);
        latency =
          List.filter
            (fun (name, _) ->
              starts_with "loadgen." name
              || name = "client.await.backoff.seconds")
            window.Obs.histograms;
        samples;
        per_shard;
        window;
      }
  end

(* ---- the JSON report ---- *)

let json_of_report r =
  let q h p =
    match Obs.quantile h p with Some v -> J.Float v | None -> J.Null
  in
  J.Obj
    [
      ("offered", J.Int r.offered);
      ("accepted", J.Int r.accepted);
      ("completed", J.Int r.completed);
      ("cached", J.Int r.cached);
      ("failed", J.Int r.failed);
      ("errors", J.Int r.errors);
      ("retries", J.Int r.retries);
      ("lost", J.Int r.lost);
      ("wall_s", J.Float r.wall);
      ("achieved_rate", J.Float r.achieved_rate);
      ( "latency",
        J.Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 J.Obj
                   [
                     ("count", J.Int h.Obs.h_count);
                     ("sum_s", J.Float h.Obs.h_sum);
                     ("p50_s", q h 0.5);
                     ("p90_s", q h 0.9);
                     ("p99_s", q h 0.99);
                   ] ))
             r.latency) );
      ( "queue_depth",
        J.List
          (List.map
             (fun s ->
               J.Obj [ ("at_s", J.Float s.at); ("depth", J.Int s.depth) ])
             r.samples) );
      ( "per_shard",
        J.Obj (List.map (fun (name, n) -> (name, J.Int n)) r.per_shard) );
      ("window", Obs.json_of_snapshot r.window);
    ]
