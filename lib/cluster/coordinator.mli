(** The fleet's front door: speaks the same {!Serve.Protocol} as a
    shard, owns no store and no solver, and only decides {e where} each
    request runs — by consistent hashing ({!Ring}) over the same
    canonical job keys the shards cache under, so identical scenarios
    always land on the shard whose LRU/journal already holds them.

    Job ids are rewritten at the boundary (clients hold coordinator
    ids; shard-local ids never escape) and each job's payload and
    placement are retained, which is also the failover story: a shard
    that fails a call is dropped from the ring (counted in
    [cluster.ring.rebalances], with the owner changes of tracked keys
    in [cluster.ring.keys_moved]) and the retained payload is
    transparently resubmitted to the new owner on the next
    status/result touch.  Batches ([submit_batch]) fan out one
    sub-batch per owning shard and gather per-item responses back into
    submission order ([cluster.batch.{submitted,failed}]); [stats] and
    [metrics] aggregate every shard — the Prometheus exposition
    relabels each shard's samples under [shard="name"] — and
    [shutdown] (or SIGTERM) forwards the drain to every shard before
    the coordinator exits. *)

type config = {
  listen : Serve.Transport.endpoint;
  shards : (string * Serve.Transport.endpoint) list;
      (** distinct names; ring placement hashes the names, so keeping a
          name stable across restarts keeps its arcs (and cache) *)
  vnodes : int;  (** ring points per shard ({!Ring.default_vnodes}) *)
  verbose : bool;
  max_line : int;  (** per-connection carry cap, as in the server *)
  access_log : string option;
      (** append one JSON object per routed request to this file —
          [ts]/[request_id]/[verb]/[outcome]/[latency_s] like the shard
          server's log, plus the routed [shard] name and the request's
          [trace] id; an unopenable path is a startup error *)
  trace : string option;
      (** record [cluster.request] spans while routing and write Chrome
          [trace_event] JSON here on drain.  While tracing, a request
          arriving without a trace context is minted one at the front
          door; either way shard calls forward the trace id with the
          coordinator's span as the new parent. *)
}

val default_config :
  listen:Serve.Transport.endpoint ->
  shards:(string * Serve.Transport.endpoint) list ->
  config

val run : config -> (unit, string) result
(** Serve until drained (the [shutdown] verb or SIGTERM).  [Error]
    covers startup problems only: nothing to route to, duplicate shard
    names, endpoint in use.  Shards are dialed lazily — a shard that is
    down at startup only fails the requests routed to it. *)
