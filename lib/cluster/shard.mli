(** The coordinator's channel to one shard server: name, endpoint, and
    a lazily (re)dialed connection.  Protocol-level errors ([ok] =
    false responses) prove the shard alive; only transport failures
    mark it dead, after one reconnect attempt (the shard may just have
    restarted and dropped the old connection).  A dead shard fails
    every call instantly until {!revive}. *)

type t

val make : name:string -> Serve.Transport.endpoint -> t
val name : t -> string
val endpoint : t -> Serve.Transport.endpoint
val alive : t -> bool

val rpc : t -> Obs.Json.t -> (Obs.Json.t, string) result
(** One request/response round trip; dials on first use.  [Error] =
    transport failure (and the shard is now marked dead). *)

val request :
  ?trace:string * string ->
  t ->
  Serve.Protocol.request ->
  (Obs.Json.t, string) result
(** [?trace] forwards a [(trace id, parent span id)] context on the
    request envelope ({!Serve.Protocol.with_trace}), so the shard's
    spans for this request join the originating trace. *)

val mark_dead : t -> unit
val revive : t -> unit

val close : t -> unit
(** Drop the connection (the shard stays alive for a future redial). *)
