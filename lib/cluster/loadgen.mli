(** Open-loop load generation against a scenario service or fleet
    endpoint — the sustained-load half of the observability story.

    Open-loop: arrival [k] fires at [t0 + k/rate] regardless of how
    earlier arrivals fared, so a server falling behind faces a growing
    backlog instead of the generator slowing down with it (which is what
    makes the measured queue depth and p99 honest).  [clients] domains
    share the schedule through one atomic arrival counter; each owns its
    own connection, draws scenarios from the warm/cold mix, submits
    (honouring [retry_after]), and awaits the answer.  A detached
    sampler domain scrapes the [metrics] verb for queue depth over time.

    The run leaves its figures in the ordinary [Obs] registry
    ([loadgen.{offered,accepted,completed,cached,failed,errors,retries,
    lost}] counters, [loadgen.{submit,e2e,sample}.seconds] histograms,
    plus the [client.await.backoff.seconds] the awaits feed) and the
    report is the {!Obs.diff} window over them. *)

type config = {
  endpoint : Serve.Transport.endpoint;
  rate : float;  (** target arrivals per second (> 0) *)
  duration : float;  (** seconds of offered load (> 0) *)
  clients : int;  (** concurrent client domains (>= 1) *)
  warm_pct : int;
      (** share of arrivals drawn from the warm set, 0..100 — warm
          scenarios repeat (the cache-hit path), cold ones cycle through
          distinct grids (the solver path) *)
  warm : Serve.Protocol.submit list;
  cold : Serve.Protocol.submit list;
  sample_every : float;  (** queue-depth scrape period; [<= 0] disables *)
  await_timeout : float;  (** per-answer deadline, seconds *)
  trace : bool;
      (** mint a fresh [(trace id, span id)] per submission, so a traced
          server/fleet records its spans under client-chosen ids *)
}

val default_config :
  endpoint:Serve.Transport.endpoint ->
  warm:Serve.Protocol.submit list ->
  cold:Serve.Protocol.submit list ->
  config
(** 20/s for 5 s on 4 clients, 80% warm, 250 ms sampling, 60 s answer
    deadline, tracing on. *)

type sample = { at : float;  (** seconds since the run started *) depth : int }

type report = {
  offered : int;  (** arrivals fired *)
  accepted : int;  (** submits the service accepted *)
  completed : int;  (** answers received (including cache hits) *)
  cached : int;
  failed : int;  (** terminal but not done: failed/timeout/cancelled *)
  errors : int;  (** transport failures and non-retryable rejections *)
  retries : int;  (** [retry_after] rounds honoured *)
  lost : int;
      (** accepted but no terminal answer within the deadline — the
          count a load gate must hold at zero *)
  wall : float;
  achieved_rate : float;  (** accepted submissions per wall second *)
  latency : (string * Obs.hist_entry) list;
      (** the window's [loadgen.*.seconds] histograms plus
          [client.await.backoff.seconds] *)
  samples : sample list;  (** queue depth over time, oldest first *)
  per_shard : (string * int) list;
      (** submitted-jobs balance from a final [stats] call: one entry
          per shard behind a coordinator, [("self", n)] against a
          single server *)
  window : Obs.snapshot;  (** the full {!Obs.diff} over the run *)
}

val run : config -> (report, string) result
(** Drive the endpoint until the schedule is exhausted and every
    accepted job answered (or deadlined).  [Error] = invalid config
    only; endpoint failures during the run are counted, not raised. *)

val json_of_report : report -> Obs.Json.t
(** The report as JSON: scalar counts, per-histogram
    count/sum/p50/p90/p99, [queue_depth] samples, [per_shard] balance,
    and the raw [window] snapshot ({!Obs.json_of_snapshot}).  This is
    the schema documented in docs/observability.md and written to
    [BENCH_load.json] by the load smoke. *)
