(* A channel from the coordinator to one shard server: a name, an
   endpoint, and a lazily (re)dialed client connection.

   Failure discipline: protocol-level errors (ok = false responses) are
   the shard speaking and prove it alive; only transport failures count
   against it.  A transport failure on an existing connection gets one
   fresh dial (the shard may simply have restarted); if that also
   fails, the shard is marked dead and stays dead until [revive] — the
   coordinator decides when (if ever) to re-admit it to the ring. *)

type t = {
  name : string;
  endpoint : Serve.Transport.endpoint;
  mutable conn : Serve.Client.t option;
  mutable alive : bool;
}

let make ~name endpoint = { name; endpoint; conn = None; alive = true }
let name t = t.name
let endpoint t = t.endpoint
let alive t = t.alive

let drop_conn t =
  match t.conn with
  | Some c ->
    Serve.Client.close c;
    t.conn <- None
  | None -> ()

let close t = drop_conn t

let mark_dead t =
  drop_conn t;
  t.alive <- false

let revive t = t.alive <- true

let connection t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    match Serve.Client.connect_endpoint t.endpoint with
    | Ok c ->
      t.conn <- Some c;
      Ok c
    | Error e -> Error e)

let rpc t json =
  if not t.alive then Error (t.name ^ ": shard is dead")
  else begin
    let had_conn = t.conn <> None in
    match connection t with
    | Error e ->
      mark_dead t;
      Error e
    | Ok c -> (
      match Serve.Client.rpc c json with
      | Ok resp -> Ok resp
      | Error _ when had_conn -> (
        (* stale connection (shard restarted?): one fresh dial *)
        drop_conn t;
        match connection t with
        | Error e ->
          mark_dead t;
          Error e
        | Ok c -> (
          match Serve.Client.rpc c json with
          | Ok resp -> Ok resp
          | Error e ->
            mark_dead t;
            Error e))
      | Error e ->
        mark_dead t;
        Error e)
  end

let request ?trace t req =
  rpc t (Serve.Protocol.with_trace trace (Serve.Protocol.json_of_request req))
